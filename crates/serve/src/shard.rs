//! Per-shard serving state: the quantized slice a partition-affine worker
//! keeps hot, the halo-exchange bookkeeping that keeps cross-shard
//! receptive fields coherent under mutation, and the per-batch hardware
//! cost estimate.
//!
//! A [`ShardState`] replicates, for one part of the model's partitioning:
//!
//! * the **owned** nodes (the shard answers their requests),
//! * the **halo** — every node within `L` in-edge hops of an owned node
//!   but owned elsewhere (`L` = model layers), exactly the paper's sparse-
//!   connection `eID` lists closed over the receptive-field depth,
//! * a [`LocalAdjacency`] slice of the global normalized adjacency with
//!   columns remapped into local id space, and
//! * packed bit-plane copies of exactly the **halo** rows. Owned rows are
//!   never duplicated — [`ShardPlaneRows`] routes them to the model's
//!   global [`TierPackedFeatures`] store, so the only per-shard feature
//!   bytes are the cross-shard copies the halo exchange actually has to
//!   maintain.
//!
//! Batches execute entirely against this state through
//! [`mega_gnn::forward_targets_local`], bit-exact with the global pass.
//! When a graph delta lands, the owning model routes each dirty row to the
//! shards holding it: the owner shard refreshes in place, and neighbor
//! shards whose halo copies went stale re-fetch them (the halo exchange —
//! counted per shard so the serving metrics expose cross-shard traffic the
//! way the paper's Fig. 12 exposes sparse-connection DRAM traffic).

use mega_format::planes::{PlaneRow, PlaneRows};
use mega_format::TierPackedFeatures;
use mega_gnn::{AdjacencyView, DynAdjacency, LocalAdjacency, ModelConfig, ReceptiveField};
use mega_graph::{DynamicGraph, NodeId};
use mega_partition::Partitioning;
use mega_sim::Workload;

/// One shard's resident state.
pub struct ShardState {
    /// The part this shard serves.
    pub part: u32,
    /// Owned nodes, ascending global ids.
    pub owned: Vec<NodeId>,
    /// Halo nodes (read-only copies of other shards' rows), ascending.
    pub halo: Vec<NodeId>,
    /// `is_halo[local]` flags halo rows in local id space.
    pub is_halo: Vec<bool>,
    /// Shard-local adjacency slice (columns in local ids).
    pub adjacency: LocalAdjacency,
    /// Packed bit-plane copies of this shard's halo rows only (owned rows
    /// read the global store through [`ShardPlaneRows`]).
    pub halo_rows: TierPackedFeatures,
    /// `halo_slot[local]` is the row's index into `halo_rows`, or
    /// [`OWNED`] for owned rows (which have no local copy).
    pub halo_slot: Vec<u32>,
    /// Cumulative halo rows re-fetched from owner shards (halo exchange
    /// traffic).
    pub halo_fetches: u64,
    /// Cumulative slice rebuilds (membership-changing mutations).
    pub rebuilds: u64,
}

/// Sentinel in [`ShardState::halo_slot`]: the local row is owned, not a
/// halo copy.
pub const OWNED: u32 = u32::MAX;

/// What one applied delta did to one shard (reported through
/// [`crate::UpdateResponse`] and the metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRefresh {
    /// The shard.
    pub shard: u32,
    /// Halo rows re-fetched from their owners (stale copies invalidated by
    /// the delta plus rows that newly entered the halo).
    pub halo_fetched: usize,
    /// Whether the shard's slice was rebuilt (membership may have moved).
    pub rebuilt: bool,
}

impl ShardState {
    /// Extracts shard `part` from the global artifacts: `hops` should be
    /// the model's layer count so the halo covers every receptive field of
    /// an owned target.
    pub fn extract(
        part: u32,
        partitioning: &Partitioning,
        graph: &DynamicGraph,
        global_adjacency: &DynAdjacency,
        packed: &TierPackedFeatures,
        hops: usize,
    ) -> Self {
        let spec = partitioning.shard_spec_with(part, hops, |v| graph.in_neighbors(v));
        let locals = spec.locals();
        let adjacency = LocalAdjacency::slice(global_adjacency, &locals);
        let mut halo_rows = TierPackedFeatures::new(packed.dim());
        let mut halo_slot = Vec::with_capacity(locals.len());
        let mut is_halo = Vec::with_capacity(locals.len());
        for &g in &locals {
            if spec.in_halo(g) {
                let slot = halo_rows.push_copy(packed.plane_row(g as usize));
                halo_slot.push(slot as u32);
                is_halo.push(true);
            } else {
                halo_slot.push(OWNED);
                is_halo.push(false);
            }
        }
        Self {
            part,
            owned: spec.owned,
            halo: spec.halo,
            is_halo,
            adjacency,
            halo_rows,
            halo_slot,
            halo_fetches: 0,
            rebuilds: 0,
        }
    }

    /// Whether the shard owns `v`.
    pub fn owns(&self, v: NodeId) -> bool {
        self.owned.binary_search(&v).is_ok()
    }

    /// Whether `v` is resident (owned or halo).
    pub fn contains(&self, v: NodeId) -> bool {
        self.adjacency.local_of(v).is_some()
    }

    /// Number of resident rows.
    pub fn num_locals(&self) -> usize {
        self.adjacency.locals().len()
    }

    /// Approximate heap bytes this slice holds resident: the local
    /// adjacency (ids + rows), the packed halo-row copies, and the
    /// membership bookkeeping (`owned`/`halo`/`is_halo`/`halo_slot`).
    /// Owned feature rows live in the model's global packed store and are
    /// charged there, not here. Feeds the per-model memory gauges
    /// ([`crate::ModelMemory`]).
    pub fn resident_bytes(&self) -> usize {
        self.adjacency.approx_heap_bytes()
            + self.halo_rows.resident_bytes()
            + (self.owned.len() + self.halo.len()) * std::mem::size_of::<NodeId>()
            + self.halo_slot.len() * std::mem::size_of::<u32>()
            + self.is_halo.len()
    }

    /// Counts how many distinct rows of a local-id [`ReceptiveField`]
    /// resolved from halo copies — the batch's cross-shard read traffic.
    pub fn halo_rows_in(&self, field: &ReceptiveField) -> usize {
        let mut union: Vec<NodeId> = field.needed.concat();
        union.sort_unstable();
        union.dedup();
        union
            .into_iter()
            .filter(|&local| self.is_halo[local as usize])
            .count()
    }

    /// Refreshes resident rows in place — the membership-preserving fast
    /// path of the halo exchange, `O(dirty)` instead of a full re-extract.
    /// Sound only when the delta changed no in-neighbor *set* inside this
    /// shard's locals (value-only GCN renormalization, feature re-tiers):
    /// membership is a function of in-neighbor sets, so it cannot have
    /// moved. `adjacency_dirty` rows are re-sliced from the global
    /// adjacency; `feature_dirty` *halo* rows are re-copied from the
    /// global packed store (owned rows need nothing — the shard reads them
    /// from that store directly). Refreshed halo rows count as
    /// halo-exchange fetches.
    pub fn refresh_rows(
        &mut self,
        global_adjacency: &DynAdjacency,
        packed: &TierPackedFeatures,
        adjacency_dirty: &[NodeId],
        feature_dirty: &[NodeId],
    ) -> ShardRefresh {
        let mut fetched_halo: Vec<NodeId> = Vec::new();
        for &v in adjacency_dirty {
            if self.adjacency.refresh_row(global_adjacency, v) && self.in_halo(v) {
                fetched_halo.push(v);
            }
        }
        for &v in feature_dirty {
            if let Some(local) = self.adjacency.local_of(v) {
                let slot = self.halo_slot[local as usize];
                if slot != OWNED {
                    self.halo_rows
                        .set_copy(slot as usize, packed.plane_row(v as usize));
                    fetched_halo.push(v);
                }
            }
        }
        fetched_halo.sort_unstable();
        fetched_halo.dedup();
        self.halo_fetches += fetched_halo.len() as u64;
        ShardRefresh {
            shard: self.part,
            halo_fetched: fetched_halo.len(),
            rebuilt: false,
        }
    }

    /// Whether `v` is one of this shard's halo copies.
    fn in_halo(&self, v: NodeId) -> bool {
        self.halo.binary_search(&v).is_ok()
    }

    /// Rebuilds this shard from current global state, carrying the
    /// cumulative counters forward and charging the halo exchange for
    /// exactly the rows that are new to the halo or were invalidated by
    /// `dirty` (sorted global ids whose adjacency row or feature row
    /// changed).
    pub fn rebuild(
        &mut self,
        partitioning: &Partitioning,
        graph: &DynamicGraph,
        global_adjacency: &DynAdjacency,
        packed: &TierPackedFeatures,
        hops: usize,
        dirty: &[NodeId],
    ) -> ShardRefresh {
        let fresh = Self::extract(
            self.part,
            partitioning,
            graph,
            global_adjacency,
            packed,
            hops,
        );
        let fetched = fresh
            .halo
            .iter()
            .filter(|&&v| self.halo.binary_search(&v).is_err() || dirty.binary_search(&v).is_ok())
            .count();
        let (halo_fetches, rebuilds) = (self.halo_fetches, self.rebuilds);
        *self = fresh;
        self.halo_fetches = halo_fetches + fetched as u64;
        self.rebuilds = rebuilds + 1;
        ShardRefresh {
            shard: self.part,
            halo_fetched: fetched,
            rebuilt: true,
        }
    }
}

/// Local-id [`PlaneRows`] adapter over a shard's split feature residency:
/// **owned** rows resolve through the slice's id map into the model's
/// global packed store (no per-shard copy exists), while **halo** rows
/// read the shard's own packed copies — the rows the halo exchange
/// maintains. Copies are verbatim ([`TierPackedFeatures::push_copy`]), so
/// shard execution stays bit-exact with the global pass.
pub struct ShardPlaneRows<'a> {
    /// The model's global packed feature store (owned rows).
    pub store: &'a TierPackedFeatures,
    /// The shard whose local ids are being resolved (halo copies + id
    /// map).
    pub shard: &'a ShardState,
}

impl PlaneRows for ShardPlaneRows<'_> {
    fn dim(&self) -> usize {
        self.store.dim()
    }

    fn plane_row(&self, row: usize) -> PlaneRow<'_> {
        let slot = self.shard.halo_slot[row];
        if slot == OWNED {
            self.store
                .plane_row(self.shard.adjacency.global_of(row as u32) as usize)
        } else {
            self.shard.halo_rows.plane_row(slot as usize)
        }
    }
}

/// Analytic MEGA cost estimate for one shard-batch (the ROADMAP's
/// hardware-model feedback, minimal slice): cycles from the accelerator's
/// combination/aggregation engine models, DRAM bytes from the
/// Adaptive-Package compressed feature sizes — no DRAM trace, so the
/// estimate costs microseconds per batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HwEstimate {
    /// Estimated MEGA busy cycles (per layer, the slower of the pipelined
    /// combination/aggregation engines).
    pub cycles: u64,
    /// Estimated DRAM bytes: compressed mixed-precision feature maps,
    /// weights, and the receptive field's adjacency slice.
    pub dram_bytes: u64,
}

/// Estimates MEGA cycles/DRAM for executing `field` (a *local-id*
/// receptive field over `shard`) as one inference over the field's
/// subgraph, with every node at the bitwidth `bits_of` assigns its global
/// id. `input_density` is the dataset's input feature density; hidden
/// layers are assumed half dense (the workload builders' fallback).
pub fn estimate_batch_hw(
    shard: &ShardState,
    field: &ReceptiveField,
    config: &ModelConfig,
    weight_bits: u8,
    input_density: f64,
    bits_of: impl Fn(NodeId) -> u8,
) -> HwEstimate {
    // The field's distinct local nodes, remapped densely for the subgraph.
    let mut nodes: Vec<NodeId> = field.needed.concat();
    nodes.sort_unstable();
    nodes.dedup();
    if nodes.is_empty() {
        return HwEstimate::default();
    }
    let dense_of = |local: NodeId| nodes.binary_search(&local).expect("field node") as u32;

    // Edges: the aggregation rows the pass actually reads (levels >= 1),
    // minus self-loops (the normalized adjacency adds its own).
    let mut agg_rows: Vec<NodeId> = field.needed[1..].concat();
    agg_rows.sort_unstable();
    agg_rows.dedup();
    let mut edges = Vec::new();
    for &v in &agg_rows {
        let dv = dense_of(v);
        for &u in shard.adjacency.row_indices(v as usize) {
            if u != v {
                edges.push((dense_of(u), dv));
            }
        }
    }
    let graph = std::rc::Rc::new(mega_graph::Graph::from_directed_edges(nodes.len(), edges));

    let mut dims = vec![config.in_dim];
    for (_, out) in config.layer_dims() {
        dims.push(out);
    }
    let mut densities = vec![input_density];
    densities.extend(std::iter::repeat_n(0.5, dims.len() - 2));
    let bits: Vec<u8> = nodes
        .iter()
        .map(|&local| bits_of(shard.adjacency.global_of(local)))
        .collect();
    let layer_bits = vec![bits; dims.len() - 1];
    let workload = Workload::mixed(
        "shard-batch",
        "serve",
        graph,
        &dims,
        &densities,
        layer_bits,
        weight_bits,
    );

    let cfg = mega_accel::MegaConfig::default();
    let mut cycles = 0u64;
    let mut dram_bytes = workload.adjacency_bytes();
    for l in 0..workload.layers.len() {
        let comb = mega_accel::combination::cycles(&cfg, &workload, l);
        let agg = mega_accel::aggregation::cycles(&cfg, &workload, l);
        // The two engines pipeline node by node; the slower bounds the
        // layer.
        cycles += comb.max(agg);
        dram_bytes += workload.layers[l].compressed_input_bytes() + workload.weight_bytes(l);
    }
    HwEstimate { cycles, dram_bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::AggregatorKind;
    use mega_graph::Graph;

    fn fixture() -> (DynamicGraph, Partitioning, DynAdjacency, TierPackedFeatures) {
        // 0-1-2 in part 0; 3-4-5 in part 1; cross edges 2->3, 5->0.
        let g = Graph::from_directed_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (5, 0)]);
        let dg = DynamicGraph::from_graph(&g);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        let adj = DynAdjacency::build(&dg, AggregatorKind::GcnSymmetric);
        let mut packed = TierPackedFeatures::new(2);
        for v in 0..6i32 {
            packed.push_row(&[2 * v, 2 * v + 1], 8, 1.0 + v as f32);
        }
        (dg, p, adj, packed)
    }

    fn unpacked(store: &TierPackedFeatures, row: usize) -> (Vec<i32>, f32) {
        let mut levels = vec![0i32; store.dim()];
        store.unpack_row(row, &mut levels);
        (levels, store.plane_row(row).alpha)
    }

    #[test]
    fn extract_copies_only_halo_rows() {
        let (dg, p, adj, packed) = fixture();
        let shard = ShardState::extract(0, &p, &dg, &adj, &packed, 2);
        assert_eq!(shard.owned, vec![0, 1, 2]);
        // 1 hop: 5 (feeds 0); 2 hops: 4 (feeds 5).
        assert_eq!(shard.halo, vec![4, 5]);
        assert_eq!(shard.num_locals(), 5);
        assert!(shard.owns(1) && !shard.owns(4));
        assert!(shard.contains(4) && !shard.contains(3));
        assert_eq!(shard.is_halo, vec![false, false, false, true, true]);
        // Exactly the halo rows were copied; owned rows have no slot.
        assert_eq!(shard.halo_rows.len(), 2);
        for local in 0..shard.num_locals() {
            assert_eq!(shard.halo_slot[local] == OWNED, !shard.is_halo[local]);
        }
        // The copies are bit-exact with the global store.
        let local_5 = shard.adjacency.local_of(5).unwrap() as usize;
        let slot = shard.halo_slot[local_5] as usize;
        assert_eq!(unpacked(&shard.halo_rows, slot), unpacked(&packed, 5));
    }

    #[test]
    fn plane_rows_route_owned_to_store_and_halo_to_copies() {
        let (dg, p, adj, packed) = fixture();
        let shard = ShardState::extract(0, &p, &dg, &adj, &packed, 2);
        let rows = ShardPlaneRows {
            store: &packed,
            shard: &shard,
        };
        assert_eq!(rows.dim(), 2);
        for local in 0..shard.num_locals() {
            let global = shard.adjacency.global_of(local as u32) as usize;
            let got = rows.plane_row(local);
            let want = packed.plane_row(global);
            assert_eq!(got.words, want.words, "row {global} words differ");
            assert_eq!(got.bits, want.bits);
            assert_eq!(got.alpha, want.alpha);
        }
    }

    #[test]
    fn rebuild_charges_only_new_or_dirty_halo_rows() {
        let (mut dg, mut p, mut adj, mut packed) = fixture();
        let mut shard = ShardState::extract(0, &p, &dg, &adj, &packed, 2);
        // Wire 3 -> 1: shard 0's halo gains 3 (and keeps 4, 5 untouched).
        let mut delta = mega_graph::GraphDelta::new();
        delta.insert_edge(3, 1);
        let effect = dg.apply(&delta).unwrap();
        let dirty = adj.apply_dirty(&dg, &effect);
        let refresh = shard.rebuild(&p, &dg, &adj, &packed, 2, &dirty);
        assert!(refresh.rebuilt);
        assert_eq!(shard.halo, vec![3, 4, 5]);
        // Fetched: 3 is new; 4 and 5 were clean copies.
        assert_eq!(refresh.halo_fetched, 1);
        assert_eq!(shard.halo_fetches, 1);
        assert_eq!(shard.rebuilds, 1);

        // A feature-only invalidation of an existing halo row re-fetches
        // exactly that row, and the copy picks up the rewrite.
        packed.set_row(5, &[99, 11], 8, 7.5);
        let _ = &mut p; // partitioning unchanged
        let refresh = shard.rebuild(&p, &dg, &adj, &packed, 2, &[5]);
        assert_eq!(refresh.halo_fetched, 1);
        let local_5 = shard.adjacency.local_of(5).unwrap() as usize;
        let slot = shard.halo_slot[local_5] as usize;
        assert_eq!(unpacked(&shard.halo_rows, slot), (vec![99, 11], 7.5));
        assert_eq!(shard.halo_fetches, 2);
    }

    #[test]
    fn refresh_rows_updates_halo_copies_in_place() {
        let (dg, p, adj, mut packed) = fixture();
        let mut shard = ShardState::extract(0, &p, &dg, &adj, &packed, 2);
        // A value-only rewrite of halo row 5 and owned row 1: only the
        // halo copy is re-fetched (owned rows read the global store).
        packed.set_row(5, &[42, 43], 8, 2.5);
        packed.set_row(1, &[7, 8], 8, 3.0);
        let refresh = shard.refresh_rows(&adj, &packed, &[], &[1, 5]);
        assert!(!refresh.rebuilt);
        assert_eq!(refresh.halo_fetched, 1);
        assert_eq!(shard.halo_fetches, 1);
        let local_5 = shard.adjacency.local_of(5).unwrap() as usize;
        let slot = shard.halo_slot[local_5] as usize;
        assert_eq!(unpacked(&shard.halo_rows, slot), (vec![42, 43], 2.5));
        // The adapter serves both rewrites.
        let rows = ShardPlaneRows {
            store: &packed,
            shard: &shard,
        };
        let local_1 = shard.adjacency.local_of(1).unwrap() as usize;
        assert_eq!(rows.plane_row(local_1).alpha, 3.0);
        assert_eq!(rows.plane_row(local_5).alpha, 2.5);
    }

    #[test]
    fn batch_estimate_scales_with_bits() {
        let (dg, p, adj, packed) = fixture();
        let shard = ShardState::extract(0, &p, &dg, &adj, &packed, 2);
        let config = ModelConfig {
            kind: mega_gnn::GnnKind::Gcn,
            in_dim: 16,
            hidden: 8,
            out_dim: 4,
            layers: 2,
            seed: 7,
        };
        let targets = vec![shard.adjacency.local_of(0).unwrap()];
        let field = ReceptiveField::expand(&shard.adjacency, &targets, 2);
        let low = estimate_batch_hw(&shard, &field, &config, 4, 0.5, |_| 2);
        let high = estimate_batch_hw(&shard, &field, &config, 4, 0.5, |_| 8);
        assert!(low.cycles > 0 && low.dram_bytes > 0);
        assert!(high.cycles > low.cycles, "more bits, more bit-serial beats");
        assert!(high.dram_bytes > low.dram_bytes);
    }
}
