//! Event-driven request completion: per-request tickets and the
//! completion router that delivers each response to its waiter the moment
//! it exists.
//!
//! Before this module, the only way to observe a response was to drain the
//! engine's one global mpsc stream — fine for offline drains, hopeless for
//! request/response callers, who had to scan every other caller's traffic
//! (or sleep-poll) to find their own answer. MEGA's degree-aware tiering
//! is a *latency* knob (low-degree nodes are cheap at 2–3 bits), and a
//! poll loop puts a floor under exactly the latency the tiering buys back;
//! AMPLE (Gimenes et al.) makes the same point architecturally with
//! event-driven rather than polled dispatch. So completion is now pushed,
//! not polled:
//!
//! * [`ServeEngine::submit`](crate::ServeEngine::submit) registers a
//!   [`Ticket`] — a per-request slot behind a `Mutex` + `Condvar` — in the
//!   engine's [`CompletionRouter`] *before* the request can reach a worker.
//! * Whoever produces the response (the submit-time logits-cache hit path,
//!   a worker's batch/cached/update path) calls
//!   [`Completions::send`], which delivers into the slot (waking its
//!   waiter immediately) *and* onto the legacy broadcast stream.
//! * [`Ticket::wait`] blocks until delivery or a per-request deadline —
//!   no global channel, no poll tick, no wakeup for anyone else's
//!   response.
//!
//! The router doubles as the engine's in-flight accounting: a slot exists
//! exactly while its request is outstanding, so
//! [`CompletionRouter::in_flight`] is the admission-control signal the
//! HTTP ingress ([`crate::http`]) sheds load on.

use std::collections::HashMap;
use std::sync::mpsc::Sender;
use std::sync::Arc;

use mega::sync::{Condvar, Mutex};

use crate::poison::LockRecoverExt;
use std::time::{Duration, Instant};

use crate::request::{InferenceResponse, ServeResponse, UpdateResponse};

/// Why a [`Ticket::wait`] returned without a response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WaitError {
    /// The deadline passed before the response was delivered. The request
    /// is still in flight: the response will land on this ticket (and the
    /// legacy stream) whenever it completes, and a later `wait` can still
    /// collect it.
    Timeout(Duration),
    /// The engine dropped the request without answering (the model was
    /// re-registered out from under it, or the engine tore down first).
    /// No response will ever arrive.
    Dropped,
}

impl std::fmt::Display for WaitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WaitError::Timeout(d) => write!(f, "no response within {d:?}"),
            WaitError::Dropped => write!(f, "request dropped without a response"),
        }
    }
}

impl std::error::Error for WaitError {}

/// Slot lifecycle. `Delivered` keeps the response resident so repeated
/// waits (e.g. retrying after a timeout that raced delivery) all succeed.
enum SlotState {
    Pending,
    Delivered(ServeResponse),
    Dropped,
}

struct Slot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

impl Slot {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn deliver(&self, response: ServeResponse) {
        let mut state = self.state.lock().recover("ticket-slot");
        *state = SlotState::Delivered(response);
        self.ready.notify_all();
    }

    fn drop_request(&self) {
        let mut state = self.state.lock().recover("ticket-slot");
        if matches!(*state, SlotState::Pending) {
            *state = SlotState::Dropped;
        }
        self.ready.notify_all();
    }
}

/// A claim on one in-flight request's response.
///
/// Returned by [`crate::ServeEngine::submit`] and
/// [`crate::ServeEngine::submit_update`]; redeemed with [`Ticket::wait`],
/// which blocks on the request's own `Condvar` until the worker (or the
/// submit-time cache-hit path) delivers — the response arrives the moment
/// it exists, not on the next poll tick. Dropping a ticket without waiting
/// is fine: the response still flows to the legacy stream and the slot is
/// reclaimed on delivery.
pub struct Ticket {
    id: u64,
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).finish()
    }
}

impl Ticket {
    /// The engine-assigned request id (matches the `id` on the response).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Blocks until the response is delivered, the request is dropped, or
    /// `timeout` elapses. A timed-out ticket stays valid: the in-flight
    /// request keeps its slot, and a later `wait` (or the legacy stream)
    /// still observes the response.
    pub fn wait(&self, timeout: Duration) -> Result<ServeResponse, WaitError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.slot.state.lock().recover("ticket-slot");
        loop {
            match &*state {
                SlotState::Delivered(response) => return Ok(response.clone()),
                SlotState::Dropped => return Err(WaitError::Dropped),
                SlotState::Pending => {}
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(WaitError::Timeout(timeout));
            }
            let (next, _) = self
                .slot
                .ready
                .wait_timeout(state, deadline - now)
                .recover("ticket-slot");
            state = next;
        }
    }

    /// Non-blocking probe: the response if it has already been delivered.
    pub fn try_take(&self) -> Option<ServeResponse> {
        match &*self.slot.state.lock().recover("ticket-slot") {
            SlotState::Delivered(response) => Some(response.clone()),
            _ => None,
        }
    }

    /// Like [`Ticket::wait`], unwrapped to the inference payload.
    ///
    /// # Panics
    ///
    /// Panics if the delivered response is an update acknowledgement
    /// (i.e. the ticket came from `submit_update`).
    pub fn wait_inference(&self, timeout: Duration) -> Result<InferenceResponse, WaitError> {
        Ok(self
            .wait(timeout)?
            .into_inference()
            .expect("inference ticket delivered an update ack"))
    }

    /// Like [`Ticket::wait`], unwrapped to the update acknowledgement.
    ///
    /// # Panics
    ///
    /// Panics if the delivered response is an inference response.
    pub fn wait_update(&self, timeout: Duration) -> Result<UpdateResponse, WaitError> {
        Ok(self
            .wait(timeout)?
            .into_update()
            .expect("update ticket delivered an inference response"))
    }
}

/// The engine's table of in-flight request slots, keyed by request id.
///
/// A slot is registered *before* its request is published to the
/// scheduler (so delivery can never race registration) and removed on
/// delivery or drop — which makes [`CompletionRouter::in_flight`] an
/// exact count of outstanding requests, the signal admission control
/// sheds on.
#[derive(Default)]
pub struct CompletionRouter {
    slots: Mutex<HashMap<u64, Arc<Slot>>>,
}

impl CompletionRouter {
    /// An empty router.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a pending slot for `id` and returns its ticket.
    pub fn register(&self, id: u64) -> Ticket {
        let slot = Arc::new(Slot::new());
        self.slots
            .lock()
            .recover("completion-router")
            .insert(id, slot.clone());
        Ticket { id, slot }
    }

    /// Delivers `response` into its slot (if any waiter registered one)
    /// and reclaims the slot. Requests submitted without keeping the
    /// ticket still pass through here — the slot exists regardless, which
    /// is what keeps `in_flight` exact.
    pub fn deliver(&self, response: &ServeResponse) {
        let slot = self
            .slots
            .lock()
            .recover("completion-router")
            .remove(&response.id());
        if let Some(slot) = slot {
            slot.deliver(response.clone());
        }
    }

    /// Marks `id` as dropped-without-answer and wakes its waiter (if any).
    pub fn drop_request(&self, id: u64) {
        let slot = self.slots.lock().recover("completion-router").remove(&id);
        if let Some(slot) = slot {
            slot.drop_request();
        }
    }

    /// Number of requests submitted but not yet answered or dropped.
    pub fn in_flight(&self) -> usize {
        self.slots.lock().recover("completion-router").len()
    }
}

/// The single completion fan-out every response producer goes through:
/// deliver into the request's ticket slot (waking its waiter immediately)
/// and onto the legacy broadcast stream (when the engine was started with
/// one). Workers hold a clone; the engine's own clone serves the
/// submit-time cache-hit path.
#[derive(Clone)]
pub struct Completions {
    router: Arc<CompletionRouter>,
    /// `None` when the engine runs stream-less
    /// ([`crate::ServeEngine::start_detached`]) — tickets are then the
    /// only delivery path, and nothing accumulates unread.
    stream: Option<Sender<ServeResponse>>,
}

impl Completions {
    /// A fan-out over `router` plus an optional legacy stream.
    pub fn new(router: Arc<CompletionRouter>, stream: Option<Sender<ServeResponse>>) -> Self {
        Self { router, stream }
    }

    /// The shared in-flight table.
    pub fn router(&self) -> &Arc<CompletionRouter> {
        &self.router
    }

    /// Delivers one response to its ticket and the stream. A dropped
    /// stream receiver means the caller stopped listening; tickets still
    /// get their delivery, and draining continues.
    pub fn send(&self, response: ServeResponse) {
        self.router.deliver(&response);
        if let Some(stream) = &self.stream {
            let _ = stream.send(response);
        }
    }

    /// Reports a request the engine will never answer (see
    /// [`CompletionRouter::drop_request`]).
    pub fn drop_request(&self, id: u64) {
        self.router.drop_request(id);
    }

    /// [`Completions::send`] for a traced inference response: stamps
    /// [`TraceStage::Delivered`](crate::trace::TraceStage::Delivered),
    /// folds the finished timeline into `tracer` (stage histograms plus
    /// the flight recorder), then fans the response out. Every inference
    /// delivery path — submit-time cache hit, worker partial-batch split,
    /// worker batch — funnels through here so a timeline can never escape
    /// unrecorded.
    pub fn deliver_traced(
        &self,
        response: InferenceResponse,
        trace: &mut crate::trace::RequestTrace,
        tracer: &crate::trace::Tracer,
    ) {
        trace.stamp(crate::trace::TraceStage::Delivered);
        tracer.complete(trace, &response);
        self.send(ServeResponse::Inference(response));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::ModelKey;
    use mega_gnn::GnnKind;
    use std::sync::mpsc;

    fn response(id: u64) -> ServeResponse {
        ServeResponse::Inference(InferenceResponse {
            id,
            model: ModelKey::new("Cora", GnnKind::Gcn),
            node: 3,
            logits: vec![1.0, 2.0],
            predicted_class: 1,
            bits: 2,
            tier: 0,
            shard: 0,
            halo_rows: 0,
            batch_size: 1,
            worker: None,
            cached: false,
            latency: Duration::from_micros(5),
        })
    }

    #[test]
    fn deliver_wakes_waiter_and_clears_in_flight() {
        let router = Arc::new(CompletionRouter::new());
        let ticket = router.register(7);
        assert_eq!(router.in_flight(), 1);
        assert!(ticket.try_take().is_none());
        let waiter = {
            let ticket_router = router.clone();
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(5));
                ticket_router.deliver(&response(7));
            })
        };
        let got = ticket.wait(Duration::from_secs(5)).expect("delivered");
        assert_eq!(got.id(), 7);
        waiter.join().unwrap();
        assert_eq!(router.in_flight(), 0);
        // Repeated waits keep succeeding (delivery is sticky).
        assert!(ticket.wait(Duration::ZERO).is_ok());
        assert!(ticket.try_take().is_some());
    }

    #[test]
    fn timeout_leaves_ticket_collectable() {
        let router = CompletionRouter::new();
        let ticket = router.register(1);
        assert_eq!(
            ticket.wait(Duration::from_millis(1)).unwrap_err(),
            WaitError::Timeout(Duration::from_millis(1))
        );
        assert_eq!(router.in_flight(), 1, "timed-out request stays in flight");
        router.deliver(&response(1));
        assert_eq!(ticket.wait(Duration::ZERO).unwrap().id(), 1);
    }

    #[test]
    fn dropped_requests_fail_fast() {
        let router = CompletionRouter::new();
        let ticket = router.register(2);
        router.drop_request(2);
        assert_eq!(
            ticket.wait(Duration::from_secs(5)).unwrap_err(),
            WaitError::Dropped
        );
        assert_eq!(router.in_flight(), 0);
    }

    #[test]
    fn completions_fan_out_to_stream_and_ticket() {
        let router = Arc::new(CompletionRouter::new());
        let (tx, rx) = mpsc::channel();
        let completions = Completions::new(router.clone(), Some(tx));
        let ticket = router.register(9);
        completions.send(response(9));
        assert_eq!(ticket.wait(Duration::ZERO).unwrap().id(), 9);
        assert_eq!(rx.try_recv().unwrap().id(), 9);
        // Stream-less mode still delivers tickets.
        let detached = Completions::new(router.clone(), None);
        let ticket = router.register(10);
        detached.send(response(10));
        assert_eq!(ticket.wait(Duration::ZERO).unwrap().id(), 10);
    }
}
