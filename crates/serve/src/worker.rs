//! The worker pool: std threads pulling work from a shared channel and
//! executing it — inference batches over the sliced quantized forward pass,
//! and graph updates through the artifacts' incremental mutation path.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mega_gnn::infer::{forward_targets_with_field, ReceptiveField};
use mega_graph::NodeId;
use mega_tensor::Matrix;

use crate::cache::{quantize_row, ArtifactCache, ModelArtifacts};
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::request::{InferenceResponse, ModelKey, ServeResponse, UpdateResponse};
use crate::scheduler::{Batch, FlushReason, UpdateQueue, WorkItem};

/// Executes the degree-aware quantized forward pass for `targets` and
/// returns their logits (row `i` belongs to `targets[i]`).
///
/// This is the single execution path shared by batched serving and the
/// sequential reference: hidden activations are re-quantized per node at
/// the policy's bitwidth, and every arithmetic step is deterministic per
/// node, so calling this with one target or many yields bit-identical rows.
pub fn batch_logits(artifacts: &ModelArtifacts, targets: &[NodeId]) -> Matrix {
    batch_logits_with_field(artifacts, targets).0
}

/// [`batch_logits`] plus the materialized [`ReceptiveField`] (for compute
/// accounting).
pub fn batch_logits_with_field(
    artifacts: &ModelArtifacts,
    targets: &[NodeId],
) -> (Matrix, ReceptiveField) {
    let mut transform = |_layer: usize, node: NodeId, row: &mut [f32]| {
        quantize_row(row, artifacts.node_bits(node));
    };
    forward_targets_with_field(
        &artifacts.model,
        artifacts.dataset.features(),
        &artifacts.adjacency,
        targets,
        &mut transform,
    )
}

/// A pool of serving threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads consuming from `work` until the channel
    /// disconnects (engine shutdown) and answering into `responses`.
    /// `updates` is the scheduler's shared FIFO; workers pop update
    /// payloads from it when an update token arrives (they never hold the
    /// scheduler itself — its work `Sender` must die with the engine for
    /// shutdown to disconnect this pool).
    pub fn spawn(
        workers: usize,
        work: Receiver<WorkItem>,
        registry: Arc<ModelRegistry>,
        cache: Arc<ArtifactCache>,
        updates: Arc<UpdateQueue>,
        metrics: Arc<Metrics>,
        responses: Sender<ServeResponse>,
    ) -> Self {
        let shared = Arc::new(Mutex::new(work));
        let handles = (0..workers.max(1))
            .map(|worker_id| {
                let shared = shared.clone();
                let registry = registry.clone();
                let cache = cache.clone();
                let updates = updates.clone();
                let metrics = metrics.clone();
                let responses = responses.clone();
                std::thread::Builder::new()
                    .name(format!("mega-serve-worker-{worker_id}"))
                    .spawn(move || loop {
                        let item = {
                            let rx = shared.lock().expect("work receiver poisoned");
                            rx.recv()
                        };
                        match item {
                            Ok(WorkItem::Batch(batch)) => {
                                run_batch(worker_id, batch, &registry, &cache, &metrics, &responses)
                            }
                            Ok(WorkItem::Update(model)) => run_update(
                                worker_id, model, &registry, &cache, &updates, &metrics, &responses,
                            ),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        Self { handles }
    }

    /// Number of threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Waits for every worker to finish (the work channel must already be
    /// disconnected, or this blocks forever).
    pub fn join(self) {
        for handle in self.handles {
            handle.join().expect("worker thread panicked");
        }
    }
}

fn run_batch(
    worker_id: usize,
    batch: Batch,
    registry: &ModelRegistry,
    cache: &ArtifactCache,
    metrics: &Metrics,
    responses: &Sender<ServeResponse>,
) {
    // The engine validates models at submit time, so this lookup only fails
    // if a model was dropped from the registry mid-flight; nothing useful
    // can be answered then.
    let Some(spec) = registry.get(&batch.model) else {
        return;
    };
    let entry = cache.get_or_build(&batch.model, || ModelArtifacts::build(&spec));
    // Hold the read guard across execution: updates to this model wait,
    // and the batch observes one consistent artifact version throughout.
    let artifacts = entry.read();

    // Re-registering a model can shrink its graph between submit-time
    // validation and execution (the cache rebuilds from the new spec).
    // Such requests are unanswerable against the current model; drop them
    // instead of letting the forward pass panic the worker.
    let (valid, stale): (Vec<_>, Vec<_>) = batch
        .requests
        .into_iter()
        .partition(|r| (r.node as usize) < artifacts.num_nodes());
    if !stale.is_empty() {
        eprintln!(
            "mega-serve: dropping {} request(s) for {} whose nodes exceed the \
             re-registered model ({} nodes)",
            stale.len(),
            batch.model,
            artifacts.num_nodes()
        );
    }
    if valid.is_empty() {
        return;
    }

    // Walk the batch in partition-locality order so neighboring targets
    // share receptive-field rows and cache lines. `order_by_part` fixes
    // the node order; requests for the same node are answered in arrival
    // order.
    let nodes: Vec<NodeId> = valid.iter().map(|r| r.node).collect();
    let targets = artifacts.partitioning.order_by_part(&nodes);
    let mut by_node: HashMap<NodeId, VecDeque<usize>> = HashMap::new();
    for (i, &node) in nodes.iter().enumerate() {
        by_node.entry(node).or_default().push_back(i);
    }
    let order: Vec<usize> = targets
        .iter()
        .map(|&node| {
            by_node
                .get_mut(&node)
                .and_then(VecDeque::pop_front)
                .expect("targets is a permutation of nodes")
        })
        .collect();

    let started = Instant::now();
    let (logits, field) = batch_logits_with_field(&artifacts, &targets);
    let execution = started.elapsed();

    metrics.record_batch(valid.len(), field.total_rows(), execution);
    match batch.reason {
        FlushReason::Size => {
            metrics
                .size_flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        FlushReason::Deadline => {
            metrics
                .deadline_flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        FlushReason::Barrier | FlushReason::Drain => {}
    }

    let batch_size = valid.len();
    for (row, &i) in order.iter().enumerate() {
        let request = &valid[i];
        let logits_row = logits.row(row).to_vec();
        let predicted_class = logits.argmax_row(row);
        // Bits/tier reflect the artifacts the batch *executed against*; a
        // concurrent re-tier between submit and execution updates them.
        let response = InferenceResponse {
            id: request.id,
            model: request.model.clone(),
            node: request.node,
            predicted_class,
            logits: logits_row,
            bits: artifacts.node_bits(request.node),
            tier: artifacts.node_tier(request.node),
            batch_size,
            worker: worker_id,
            latency: request.submitted_at.elapsed(),
        };
        metrics.record_response(response.bits, response.latency);
        // A dropped receiver means the caller stopped listening; keep
        // draining so shutdown still completes.
        let _ = responses.send(ServeResponse::Inference(response));
    }
}

fn run_update(
    worker_id: usize,
    model: ModelKey,
    registry: &ModelRegistry,
    cache: &ArtifactCache,
    updates: &UpdateQueue,
    metrics: &Metrics,
    responses: &Sender<ServeResponse>,
) {
    let Some(spec) = registry.get(&model) else {
        return;
    };
    let entry = cache.get_or_build(&model, || ModelArtifacts::build(&spec));
    // Pop the payload *inside* the entry's write lock: tokens are
    // interchangeable ("apply one pending update for this model"), so
    // making pop+apply one critical section is what guarantees updates
    // land in FIFO submission order even when several workers race on
    // tokens for the same model. A missing payload means the queue was
    // drained out from under us (only possible at teardown).
    let outcome = entry.update(|artifacts| {
        updates.pop(&model).map(|update| {
            let result = artifacts.apply_delta(&update.delta, &update.node_features);
            (update, result, artifacts.version)
        })
    });
    let Some((update, result, version)) = outcome else {
        return;
    };
    let response = match result {
        Ok(effect) => {
            metrics.record_update(true, effect.retiered.len(), effect.dirty_rows);
            UpdateResponse {
                id: update.id,
                model,
                error: None,
                inserted_edges: effect.inserted_edges,
                removed_edges: effect.removed_edges,
                added_nodes: effect.added_nodes,
                retiered: effect.retiered,
                dirty_rows: effect.dirty_rows,
                version,
                latency: update.submitted_at.elapsed(),
                worker: worker_id,
            }
        }
        Err(error) => {
            metrics.record_update(false, 0, 0);
            UpdateResponse {
                id: update.id,
                model,
                error: Some(error),
                inserted_edges: 0,
                removed_edges: 0,
                added_nodes: Vec::new(),
                retiered: Vec::new(),
                dirty_rows: 0,
                version,
                latency: update.submitted_at.elapsed(),
                worker: worker_id,
            }
        }
    };
    let _ = responses.send(ServeResponse::Update(response));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelSpec;
    use mega_gnn::GnnKind;
    use mega_graph::DatasetSpec;

    fn artifacts() -> ModelArtifacts {
        let spec = ModelSpec::standard(
            DatasetSpec::cora().scaled(0.05).with_feature_dim(32),
            GnnKind::Gcn,
        );
        ModelArtifacts::build(&spec)
    }

    #[test]
    fn batch_logits_shape_and_order_follow_targets() {
        let a = artifacts();
        let targets: Vec<NodeId> = vec![7, 1, 7];
        let logits = batch_logits(&a, &targets);
        assert_eq!(logits.shape(), (3, a.dataset.spec.num_classes));
        // Duplicate targets get identical rows.
        for c in 0..a.dataset.spec.num_classes {
            assert_eq!(logits.get(0, c).to_bits(), logits.get(2, c).to_bits());
        }
    }

    #[test]
    fn quantized_execution_is_batch_invariant() {
        let a = artifacts();
        let solo = batch_logits(&a, &[11]);
        let grouped = batch_logits(&a, &[4, 11, 19, 2]);
        for c in 0..a.dataset.spec.num_classes {
            assert_eq!(solo.get(0, c).to_bits(), grouped.get(1, c).to_bits());
        }
    }

    #[test]
    fn batch_invariance_survives_mutation() {
        let mut a = artifacts();
        let mut delta = mega_graph::GraphDelta::new();
        delta
            .insert_edge(11, 4)
            .insert_edge(19, 11)
            .remove_edge(a.graph.out_neighbors(2).first().copied().unwrap_or(11), 2);
        let _ = a.apply_delta(&delta, &[]);
        let solo = batch_logits(&a, &[11]);
        let grouped = batch_logits(&a, &[4, 11, 19, 2]);
        for c in 0..a.dataset.spec.num_classes {
            assert_eq!(solo.get(0, c).to_bits(), grouped.get(1, c).to_bits());
        }
    }
}
