//! The worker pool: shard-affine std threads executing inference batches
//! over per-shard adjacency/feature slices, and graph updates through the
//! artifacts' incremental mutation + halo-exchange path.
//!
//! Every worker owns a private channel lane; [`WorkRouter`] pins each
//! `(model, shard)` pair to one lane by hash, so the worker that executes a
//! shard's batches is always the same thread — its slice stays hot in that
//! core's cache, which is the serving-side analogue of the paper processing
//! one dense subgraph at a time. Updates for a model all hash to one lane
//! too (shard-independent), preserving the per-model FIFO.

use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use mega_gnn::infer::ReceptiveField;
use mega_gnn::kernel::{
    forward_targets_local_packed, forward_targets_packed_with_field, KernelArena, KernelMode,
};
use mega_graph::NodeId;
use mega_tensor::Matrix;

use crate::cache::{ArtifactCache, ModelArtifacts};
use crate::logits::CachedLogits;
use crate::metrics::Metrics;
use crate::registry::ModelRegistry;
use crate::request::{
    InferenceRequest, InferenceResponse, ModelKey, ServeResponse, UpdateResponse,
};
use crate::scheduler::{Batch, FlushReason, UpdateQueue, WorkItem};
use crate::shard::{estimate_batch_hw, ShardPlaneRows};
use crate::ticket::Completions;
use crate::trace::TraceStage;

/// Routes [`WorkItem`]s to worker lanes with shard affinity: batches go to
/// `hash(model, shard) % lanes`, update tokens to `hash(model, 0) % lanes`
/// (so updates for one model stay on one lane; their application order is
/// still governed by the per-model FIFO). Dropping the router drops every
/// lane sender, which is what disconnects — and thereby terminates — the
/// worker pool.
pub struct WorkRouter {
    lanes: Vec<Sender<WorkItem>>,
    /// When present, routing increments the target lane's queue-depth
    /// gauge (the worker decrements on dequeue), so `/metrics` can sample
    /// live per-lane backlog. `None` for bare test routers.
    metrics: Option<Arc<Metrics>>,
}

impl WorkRouter {
    /// A router over the given lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty.
    pub fn new(lanes: Vec<Sender<WorkItem>>) -> Self {
        assert!(!lanes.is_empty(), "router needs at least one lane");
        Self {
            lanes,
            metrics: None,
        }
    }

    /// A router whose sends also maintain per-lane queue-depth gauges in
    /// `metrics` (the engine path; [`WorkerPool::spawn`] uses this).
    pub fn with_metrics(lanes: Vec<Sender<WorkItem>>, metrics: Arc<Metrics>) -> Self {
        let mut router = Self::new(lanes);
        router.metrics = Some(metrics);
        router
    }

    /// A single-lane router (tests and sequential consumers).
    pub fn single(lane: Sender<WorkItem>) -> Self {
        Self::new(vec![lane])
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// The lane `(model, shard)` is pinned to.
    pub fn lane_of(&self, model: &ModelKey, shard: u32) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        model.hash(&mut hasher);
        shard.hash(&mut hasher);
        (hasher.finish() % self.lanes.len() as u64) as usize
    }

    /// Sends an item down its affine lane. A disconnected lane means the
    /// engine is shutting down; the item is dropped (shutdown drains
    /// first).
    pub fn send(&self, item: WorkItem) {
        let lane = match &item {
            WorkItem::Batch(batch) => self.lane_of(&batch.model, batch.shard),
            WorkItem::Update(model) => self.lane_of(model, 0),
            WorkItem::Poison(lane) => lane % self.lanes.len(),
        };
        if let Some(metrics) = &self.metrics {
            metrics
                .lane_stat(lane)
                .depth
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let _ = self.lanes[lane].send(item);
    }
}

/// Clears the lane's liveness flag when its thread exits — by normal
/// channel disconnect *or* by panic (`Drop` runs during unwind), which is
/// exactly what lets `/healthz` notice a dead lane.
struct LaneLiveness(Arc<crate::metrics::LaneStat>);

impl Drop for LaneLiveness {
    fn drop(&mut self) {
        self.0
            .alive
            .store(false, std::sync::atomic::Ordering::Relaxed);
    }
}

// Each worker thread reuses one flat kernel arena across every batch it
// executes; steady-state batches allocate nothing.
thread_local! {
    static ARENA: std::cell::RefCell<KernelArena> = std::cell::RefCell::new(KernelArena::default());
}

fn with_arena<R>(f: impl FnOnce(&mut KernelArena) -> R) -> R {
    ARENA.with(|arena| f(&mut arena.borrow_mut()))
}

/// Executes the degree-aware quantized forward pass for `targets` against
/// the *global* artifacts and returns their logits (row `i` belongs to
/// `targets[i]`). Runs the register-blocked bit-plane kernels
/// ([`KernelMode::Blocked`]): same-tier combination rows share one
/// weight-tile pass in M-lane blocks.
///
/// This is the sequential reference path: shard-sliced execution
/// ([`shard_logits`]) must be — and is tested to be — bit-exact with it,
/// because both run the same per-node arithmetic in the same order.
pub fn batch_logits(artifacts: &ModelArtifacts, targets: &[NodeId]) -> Matrix {
    batch_logits_with_field(artifacts, targets).0
}

/// [`batch_logits`] plus the materialized [`ReceptiveField`] (for compute
/// accounting).
pub fn batch_logits_with_field(
    artifacts: &ModelArtifacts,
    targets: &[NodeId],
) -> (Matrix, ReceptiveField) {
    batch_logits_with_mode(artifacts, targets, KernelMode::Blocked)
}

/// [`batch_logits_with_field`] with an explicit kernel mode — the
/// blocked-vs-packed-vs-scalar equivalence tests and benchmarks drive
/// every engine through this.
pub fn batch_logits_with_mode(
    artifacts: &ModelArtifacts,
    targets: &[NodeId],
    mode: KernelMode,
) -> (Matrix, ReceptiveField) {
    with_arena(|arena| {
        forward_targets_packed_with_field(
            &artifacts.model,
            &artifacts.packed_model,
            &artifacts.packed_features,
            &artifacts.adjacency,
            targets,
            &mut |v| artifacts.node_bits(v),
            mode,
            arena,
        )
    })
}

/// Executes `targets` (which must be owned by `shard`) against that shard's
/// local slice: local adjacency, the global packed feature store read
/// through the shard's id map, global degree-aware bitwidths. Bit-exact
/// with [`batch_logits`].
///
/// # Panics
///
/// Panics if `shard` does not exist or a target is not resident in it.
pub fn shard_logits(artifacts: &ModelArtifacts, shard: u32, targets: &[NodeId]) -> Matrix {
    shard_logits_with_field(artifacts, shard, targets).0
}

/// [`shard_logits`] plus the local-id [`ReceptiveField`] the pass
/// materialized.
pub fn shard_logits_with_field(
    artifacts: &ModelArtifacts,
    shard: u32,
    targets: &[NodeId],
) -> (Matrix, ReceptiveField) {
    shard_logits_with_mode(artifacts, shard, targets, KernelMode::Blocked)
}

/// [`shard_logits_with_field`] with an explicit kernel mode.
pub fn shard_logits_with_mode(
    artifacts: &ModelArtifacts,
    shard: u32,
    targets: &[NodeId],
    mode: KernelMode,
) -> (Matrix, ReceptiveField) {
    let state = artifacts.shard(shard).expect("shard exists");
    let rows = ShardPlaneRows {
        store: &artifacts.packed_features,
        shard: state,
    };
    with_arena(|arena| {
        forward_targets_local_packed(
            &artifacts.model,
            &artifacts.packed_model,
            &rows,
            &state.adjacency,
            targets,
            &mut |v| artifacts.node_bits(v),
            mode,
            arena,
        )
    })
}

/// A pool of shard-affine serving threads.
pub struct WorkerPool {
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads, each consuming its own lane until that
    /// lane disconnects (engine shutdown), and returns the pool together
    /// with the [`WorkRouter`] feeding it. `updates` is the scheduler's
    /// shared FIFO; workers pop update payloads from it when an update
    /// token arrives (they never hold the scheduler itself — its router
    /// must die with the engine for shutdown to disconnect this pool).
    /// Every response leaves through `completions`, which delivers into
    /// the request's [`crate::Ticket`] slot (waking its waiter the moment
    /// the result exists) and onto the legacy stream when one is attached.
    pub fn spawn(
        workers: usize,
        registry: Arc<ModelRegistry>,
        cache: Arc<ArtifactCache>,
        updates: Arc<UpdateQueue>,
        metrics: Arc<Metrics>,
        completions: Completions,
    ) -> (Self, WorkRouter) {
        let mut lanes = Vec::new();
        let handles = (0..workers.max(1))
            .map(|worker_id| {
                let (tx, rx): (Sender<WorkItem>, Receiver<WorkItem>) = mpsc::channel();
                lanes.push(tx);
                let registry = registry.clone();
                let cache = cache.clone();
                let updates = updates.clone();
                let metrics = metrics.clone();
                let completions = completions.clone();
                std::thread::Builder::new()
                    .name(format!("mega-serve-worker-{worker_id}"))
                    .spawn(move || {
                        let stat = metrics.lane_stat(worker_id);
                        stat.alive.store(true, std::sync::atomic::Ordering::Relaxed);
                        let _liveness = LaneLiveness(stat.clone());
                        while let Ok(item) = rx.recv() {
                            let _ = stat.depth.fetch_update(
                                std::sync::atomic::Ordering::Relaxed,
                                std::sync::atomic::Ordering::Relaxed,
                                |d| Some(d.saturating_sub(1)),
                            );
                            let started = Instant::now();
                            match item {
                                WorkItem::Batch(batch) => run_batch(
                                    worker_id,
                                    batch,
                                    &registry,
                                    &cache,
                                    &metrics,
                                    &completions,
                                ),
                                WorkItem::Update(model) => run_update(
                                    worker_id,
                                    model,
                                    &registry,
                                    &cache,
                                    &updates,
                                    &metrics,
                                    &completions,
                                ),
                                WorkItem::Poison(lane) => {
                                    panic!("worker lane {lane} poisoned by fault injection")
                                }
                            }
                            stat.busy_us.fetch_add(
                                started.elapsed().as_micros() as u64,
                                std::sync::atomic::Ordering::Relaxed,
                            );
                            stat.items
                                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        let router = WorkRouter::with_metrics(lanes, metrics);
        (Self { handles }, router)
    }

    /// Number of threads in the pool.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// Per-lane liveness, indexed by worker id: `false` once the lane's
    /// thread has exited (a panicked lane, or — during shutdown — a lane
    /// that already drained). `/healthz` reads this while the engine is
    /// running, where the only way a lane finishes is a panic.
    pub fn alive(&self) -> Vec<bool> {
        self.handles.iter().map(|h| !h.is_finished()).collect()
    }

    /// Waits for every worker to finish (the router must already be
    /// dropped, or this blocks forever). A lane that panicked mid-run
    /// (e.g. fault injection via [`crate::ServeEngine::poison_lane`]) is
    /// reported, not propagated — shutdown still drains the other lanes.
    pub fn join(self) {
        for (lane, handle) in self.handles.into_iter().enumerate() {
            if handle.join().is_err() {
                eprintln!("mega-serve: worker lane {lane} panicked before shutdown");
            }
        }
    }
}

fn run_batch(
    worker_id: usize,
    mut batch: Batch,
    registry: &ModelRegistry,
    cache: &ArtifactCache,
    metrics: &Metrics,
    completions: &Completions,
) {
    // One clock read stamps the whole batch's dequeue.
    let dequeued = Instant::now();
    for request in &mut batch.requests {
        request.trace.stamp_at(TraceStage::Dequeued, dequeued);
    }
    // The engine validates models at submit time, so this lookup only fails
    // if a model was dropped from the registry mid-flight; nothing useful
    // can be answered then — but waiters must not hang, so their tickets
    // are failed fast.
    let Some(spec) = registry.get(&batch.model) else {
        for request in &batch.requests {
            completions.drop_request(request.id);
        }
        return;
    };
    let entry = cache.get_or_build(&batch.model, || ModelArtifacts::build(&spec));
    // Hold the read guard across execution: updates to this model wait,
    // and the batch observes one consistent artifact version throughout.
    let artifacts = entry.read();

    // Re-registering a model can shrink its graph or change its shard
    // count between submit-time validation and execution (the cache
    // rebuilds from the new spec). Such requests are unanswerable against
    // the batch's shard; out-of-range nodes are dropped, re-sharded nodes
    // fall back to the global reference path below.
    let (valid, stale): (Vec<_>, Vec<_>) = batch
        .requests
        .into_iter()
        .partition(|r| (r.node as usize) < artifacts.num_nodes());
    if !stale.is_empty() {
        eprintln!(
            "mega-serve: dropping {} request(s) for {} whose nodes exceed the \
             re-registered model ({} nodes)",
            stale.len(),
            batch.model,
            artifacts.num_nodes()
        );
        for request in &stale {
            completions.drop_request(request.id);
        }
    }
    if valid.is_empty() {
        return;
    }
    match batch.reason {
        FlushReason::Size => {
            metrics
                .size_flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        FlushReason::Deadline => {
            metrics
                .deadline_flushes
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        FlushReason::Barrier | FlushReason::Drain => {}
    }

    // Partial-batch split: a request that missed the logits cache at
    // submit time may have been filled since (an earlier batch computed
    // the same hot node). Answer those straight from the cache; only the
    // remainder pays the forward pass. Safe under the read guard — the
    // cache is only invalidated under the entry's write lock, so a hit
    // here is bit-exact with recomputing against these artifacts.
    let mut to_compute = Vec::with_capacity(valid.len());
    for request in valid {
        let shard = artifacts.shard_of(request.node);
        match artifacts
            .logits_cache(shard)
            .and_then(|c| c.get(request.node))
        {
            Some(hit) => {
                metrics.record_logits_lookup(shard, true);
                respond_cached(worker_id, request, shard, hit, completions, metrics);
            }
            None => to_compute.push(request),
        }
    }
    if to_compute.is_empty() {
        return;
    }
    let (sharded, foreign): (Vec<_>, Vec<_>) = to_compute.into_iter().partition(|r| {
        artifacts.shard_of(r.node) == batch.shard && artifacts.shard(batch.shard).is_some()
    });

    if !sharded.is_empty() {
        execute_shard_batch(
            worker_id,
            &artifacts,
            batch.shard,
            sharded,
            metrics,
            completions,
        );
    }
    if !foreign.is_empty() {
        // Rare re-registration race: answer through the global path rather
        // than panic the shard slice on a non-resident target.
        execute_global_batch(worker_id, &artifacts, foreign, metrics, completions);
    }
}

/// Orders requests by node id (stable for duplicates), executes, answers.
fn ordered_targets(requests: &[InferenceRequest]) -> (Vec<NodeId>, Vec<usize>) {
    let nodes: Vec<NodeId> = requests.iter().map(|r| r.node).collect();
    let mut targets = nodes.clone();
    targets.sort_unstable();
    let mut by_node: HashMap<NodeId, VecDeque<usize>> = HashMap::new();
    for (i, &node) in nodes.iter().enumerate() {
        by_node.entry(node).or_default().push_back(i);
    }
    let order: Vec<usize> = targets
        .iter()
        .map(|&node| {
            by_node
                .get_mut(&node)
                .and_then(VecDeque::pop_front)
                .expect("targets is a permutation of nodes")
        })
        .collect();
    (targets, order)
}

/// Answers one request from a logits-cache hit: no forward pass, no
/// batch — the response carries the cached row verbatim (bit-exact with
/// recomputation by the invalidation guarantee).
fn respond_cached(
    worker_id: usize,
    mut request: InferenceRequest,
    shard: u32,
    hit: CachedLogits,
    completions: &Completions,
    metrics: &Metrics,
) {
    request.trace.stamp(TraceStage::CacheHit);
    let response = InferenceResponse::from_hit(
        request.id,
        request.model.clone(),
        request.node,
        shard,
        Some(worker_id),
        hit,
        request.submitted_at.elapsed(),
    );
    metrics.record_response(response.bits, response.latency);
    completions.deliver_traced(response, &mut request.trace, &metrics.trace);
}

/// Inserts freshly computed logits rows into their owning shards' caches
/// (deduplicating repeated targets) and charges any evictions to the
/// metrics. Runs under the artifacts read guard, which is what serializes
/// fills against delta invalidation.
fn fill_logits_cache(
    artifacts: &ModelArtifacts,
    targets: &[NodeId],
    logits: &Matrix,
    metrics: &Metrics,
) {
    for (row, &node) in targets.iter().enumerate() {
        if row > 0 && targets[row - 1] == node {
            continue; // targets are sorted; duplicates share one entry
        }
        let shard = artifacts.shard_of(node);
        let Some(cache) = artifacts.logits_cache(shard) else {
            continue;
        };
        if !cache.is_enabled() {
            continue;
        }
        let evicted = cache.insert(
            node,
            CachedLogits {
                logits: logits.row(row).to_vec(),
                predicted_class: logits.argmax_row(row),
                bits: artifacts.node_bits(node),
                tier: artifacts.node_tier(node),
            },
        );
        metrics.record_logits_evictions(shard, evicted);
    }
}

#[allow(clippy::too_many_arguments)]
fn respond_batch(
    worker_id: usize,
    artifacts: &ModelArtifacts,
    requests: &mut [InferenceRequest],
    order: &[usize],
    logits: &Matrix,
    halo_rows: usize,
    completions: &Completions,
    metrics: &Metrics,
) {
    let batch_size = requests.len();
    for (row, &i) in order.iter().enumerate() {
        let request = &mut requests[i];
        let logits_row = logits.row(row).to_vec();
        let predicted_class = logits.argmax_row(row);
        // Everything placement- and precision-shaped is restamped from the
        // artifacts the batch *executed against* — never from the values
        // stamped at submit time. A re-tier or re-shard landing between
        // submit and execution at worst costs batching homogeneity; the
        // response always reports the tier/bits/shard the forward pass
        // actually served.
        let shard = artifacts.shard_of(request.node);
        let response = InferenceResponse {
            id: request.id,
            model: request.model.clone(),
            node: request.node,
            predicted_class,
            logits: logits_row,
            bits: artifacts.node_bits(request.node),
            tier: artifacts.node_tier(request.node),
            shard,
            halo_rows,
            batch_size,
            worker: Some(worker_id),
            cached: false,
            latency: request.submitted_at.elapsed(),
        };
        metrics.record_logits_lookup(shard, false);
        metrics.record_response(response.bits, response.latency);
        completions.deliver_traced(response, &mut request.trace, &metrics.trace);
    }
}

fn execute_shard_batch(
    worker_id: usize,
    artifacts: &ModelArtifacts,
    shard: u32,
    mut requests: Vec<InferenceRequest>,
    metrics: &Metrics,
    completions: &Completions,
) {
    let (targets, order) = ordered_targets(&requests);
    let started = Instant::now();
    for request in &mut requests {
        request.trace.stamp_at(TraceStage::ExecStart, started);
    }
    let (logits, field) = shard_logits_with_field(artifacts, shard, &targets);
    let execution = started.elapsed();
    let ended = Instant::now();
    for request in &mut requests {
        request.trace.stamp_at(TraceStage::ExecEnd, ended);
    }

    let state = artifacts.shard(shard).expect("shard exists");
    let halo_rows = state.halo_rows_in(&field);
    // Hardware-model feedback: what would this batch cost on MEGA?
    let est = estimate_batch_hw(
        state,
        &field,
        artifacts.model.config(),
        artifacts.weight_bits,
        artifacts.dataset.spec.feature_density,
        |v| artifacts.node_bits(v),
    );
    metrics.record_batch(requests.len(), field.total_rows(), execution);
    metrics.record_shard_batch(shard, requests.len(), halo_rows, est);
    fill_logits_cache(artifacts, &targets, &logits, metrics);
    let filled = Instant::now();
    for request in &mut requests {
        request.trace.stamp_at(TraceStage::CacheFill, filled);
    }
    respond_batch(
        worker_id,
        artifacts,
        &mut requests,
        &order,
        &logits,
        halo_rows,
        completions,
        metrics,
    );
}

fn execute_global_batch(
    worker_id: usize,
    artifacts: &ModelArtifacts,
    mut requests: Vec<InferenceRequest>,
    metrics: &Metrics,
    completions: &Completions,
) {
    let (targets, order) = ordered_targets(&requests);
    let started = Instant::now();
    for request in &mut requests {
        request.trace.stamp_at(TraceStage::ExecStart, started);
    }
    let (logits, field) = batch_logits_with_field(artifacts, &targets);
    let execution = started.elapsed();
    let ended = Instant::now();
    for request in &mut requests {
        request.trace.stamp_at(TraceStage::ExecEnd, ended);
    }
    metrics.record_batch(requests.len(), field.total_rows(), execution);
    fill_logits_cache(artifacts, &targets, &logits, metrics);
    let filled = Instant::now();
    for request in &mut requests {
        request.trace.stamp_at(TraceStage::CacheFill, filled);
    }
    respond_batch(
        worker_id,
        artifacts,
        &mut requests,
        &order,
        &logits,
        0,
        completions,
        metrics,
    );
}

fn run_update(
    worker_id: usize,
    model: ModelKey,
    registry: &ModelRegistry,
    cache: &ArtifactCache,
    updates: &UpdateQueue,
    metrics: &Metrics,
    completions: &Completions,
) {
    let Some(spec) = registry.get(&model) else {
        // The model vanished from the registry mid-flight: consume the
        // token's payload and fail its ticket so no waiter hangs.
        if let Some(update) = updates.pop(&model) {
            completions.drop_request(update.id);
        }
        return;
    };
    let entry = cache.get_or_build(&model, || ModelArtifacts::build(&spec));
    // Pop the payload *inside* the entry's write lock: tokens are
    // interchangeable ("apply one pending update for this model"), so
    // making pop+apply one critical section is what guarantees updates
    // land in FIFO submission order even when several workers race on
    // tokens for the same model. A missing payload means the queue was
    // drained out from under us (only possible at teardown).
    let outcome = entry.update(|artifacts| {
        updates.pop(&model).map(|update| {
            let result = artifacts.apply_delta(&update.delta, &update.node_features);
            // A rejected delta changed nothing; report the standing
            // balance (the success path carries it in the effect).
            let balance = if result.is_err() {
                artifacts.partitioning.balance()
            } else {
                0.0
            };
            (update, result, artifacts.version, balance)
        })
    });
    let Some((update, result, version, balance)) = outcome else {
        return;
    };
    let response = match result {
        Ok(effect) => {
            metrics.record_update(true, effect.retiered.len(), effect.dirty_rows);
            for refresh in &effect.shard_refreshes {
                metrics.record_shard_sync(refresh.shard, refresh.halo_fetched, refresh.rebuilt);
            }
            for &(shard, invalidated) in &effect.logits_invalidated {
                metrics.record_logits_invalidations(shard, invalidated);
            }
            let halo_refreshed = effect.halo_refreshed();
            let logits_invalidated = effect.logits_invalidated_total();
            UpdateResponse {
                id: update.id,
                model,
                error: None,
                inserted_edges: effect.inserted_edges,
                removed_edges: effect.removed_edges,
                added_nodes: effect.added_nodes,
                retiered: effect.retiered,
                dirty_rows: effect.dirty_rows,
                halo_refreshed,
                logits_invalidated,
                balance: effect.balance,
                version,
                latency: update.submitted_at.elapsed(),
                worker: worker_id,
            }
        }
        Err(error) => {
            metrics.record_update(false, 0, 0);
            UpdateResponse {
                id: update.id,
                model,
                error: Some(error),
                inserted_edges: 0,
                removed_edges: 0,
                added_nodes: Vec::new(),
                retiered: Vec::new(),
                dirty_rows: 0,
                halo_refreshed: 0,
                logits_invalidated: 0,
                balance,
                version,
                latency: update.submitted_at.elapsed(),
                worker: worker_id,
            }
        }
    };
    completions.send(ServeResponse::Update(response));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelSpec;
    use mega_gnn::GnnKind;
    use mega_graph::DatasetSpec;

    fn artifacts() -> ModelArtifacts {
        let spec = ModelSpec::standard(
            DatasetSpec::cora().scaled(0.05).with_feature_dim(32),
            GnnKind::Gcn,
        );
        ModelArtifacts::build(&spec)
    }

    #[test]
    fn batch_logits_shape_and_order_follow_targets() {
        let a = artifacts();
        let targets: Vec<NodeId> = vec![7, 1, 7];
        let logits = batch_logits(&a, &targets);
        assert_eq!(logits.shape(), (3, a.dataset.spec.num_classes));
        // Duplicate targets get identical rows.
        for c in 0..a.dataset.spec.num_classes {
            assert_eq!(logits.get(0, c).to_bits(), logits.get(2, c).to_bits());
        }
    }

    #[test]
    fn quantized_execution_is_batch_invariant() {
        let a = artifacts();
        let solo = batch_logits(&a, &[11]);
        let grouped = batch_logits(&a, &[4, 11, 19, 2]);
        for c in 0..a.dataset.spec.num_classes {
            assert_eq!(solo.get(0, c).to_bits(), grouped.get(1, c).to_bits());
        }
    }

    #[test]
    fn batch_invariance_survives_mutation() {
        let mut a = artifacts();
        let mut delta = mega_graph::GraphDelta::new();
        delta
            .insert_edge(11, 4)
            .insert_edge(19, 11)
            .remove_edge(a.graph.out_neighbors(2).first().copied().unwrap_or(11), 2);
        let _ = a.apply_delta(&delta, &[]);
        let solo = batch_logits(&a, &[11]);
        let grouped = batch_logits(&a, &[4, 11, 19, 2]);
        for c in 0..a.dataset.spec.num_classes {
            assert_eq!(solo.get(0, c).to_bits(), grouped.get(1, c).to_bits());
        }
    }

    #[test]
    fn shard_execution_matches_global_reference() {
        let a = artifacts();
        for node in (0..a.num_nodes() as NodeId).step_by(9) {
            let shard = a.shard_of(node);
            let sliced = shard_logits(&a, shard, &[node]);
            let global = batch_logits(&a, &[node]);
            for c in 0..a.dataset.spec.num_classes {
                assert_eq!(
                    sliced.get(0, c).to_bits(),
                    global.get(0, c).to_bits(),
                    "node {node} diverged between shard slice and global pass"
                );
            }
        }
    }

    #[test]
    fn router_pins_model_shard_pairs_to_lanes() {
        let (tx0, rx0) = mpsc::channel();
        let (tx1, rx1) = mpsc::channel();
        let router = WorkRouter::new(vec![tx0, tx1]);
        let cora = ModelKey::new("Cora", GnnKind::Gcn);
        assert_eq!(router.lanes(), 2);
        let lane = router.lane_of(&cora, 3);
        assert_eq!(lane, router.lane_of(&cora, 3), "affinity is stable");
        router.send(WorkItem::Update(cora.clone()));
        let update_lane = router.lane_of(&cora, 0);
        let received = if update_lane == 0 {
            rx0.try_recv()
        } else {
            rx1.try_recv()
        };
        assert!(matches!(received, Ok(WorkItem::Update(_))));
        drop(router);
        assert!(rx0.try_recv().is_err() && rx1.try_recv().is_err());
    }
}
