//! The batch scheduler: buckets requests by (model, shard, precision tier)
//! and flushes size- or deadline-triggered batches to the worker pool.
//!
//! The scheduler only ever sees logits-cache *misses*: the engine answers
//! cache hits at submit time ([`crate::ServeEngine::submit`]), and workers
//! split out any requests whose node was cached between submission and
//! execution ([`crate::worker`]) before running the forward pass — so a
//! bucket's eventual batch shrinks to exactly the targets that still need
//! compute (partial-batch hit/miss splitting).
//!
//! Bucketing by tier keeps a batch's per-node bitwidths — and therefore its
//! per-row cost — homogeneous, so one slow hub node does not ride along
//! with (and delay) a batch of cheap leaf nodes. Bucketing by *shard* keeps
//! a batch inside one partition's adjacency/feature slice, so the
//! shard-affine worker that executes it never touches another shard's
//! memory (emission goes through [`crate::worker::WorkRouter`], which pins
//! each `(model, shard)` pair to one worker lane).
//!
//! Graph mutations ride the same output path as inference batches (wrapped
//! in [`WorkItem`]), so updates interleave with serving traffic on the
//! worker pool instead of stopping the world. An update first flushes the
//! target model's pending buckets ([`FlushReason::Barrier`]) so requests
//! admitted before it are not left queued behind it, then parks its payload
//! in a per-model FIFO ([`BatchScheduler::take_update`]) — workers pop from
//! that FIFO, which serializes updates per model in submission order no
//! matter which worker handles which token.
//!
//! **Deadlines are timer-driven, not polled.** The scheduler knows the
//! earliest pending bucket deadline ([`BatchScheduler::next_deadline`] —
//! every bucket shares `max_delay`, so it belongs to the bucket with the
//! oldest request), and the engine's sweeper thread
//! [`BatchScheduler::sweeper_park`]s on a `Condvar` until exactly then:
//! woken early only when a submit advances that earliest deadline (the
//! scheduler re-arms from empty, or a submitter whose `submitted_at` —
//! stamped before the scheduler lock — predates every resident bucket
//! creates a sooner one) or at shutdown. An idle engine takes zero
//! sweeper wakeups per second, and a deadline flush fires when the
//! deadline passes — not up to one sweep interval later.
//!
//! **Buckets are pruned, not recycled.** A drained bucket leaves the map
//! entirely, so the map's size tracks the *live* working set of
//! `(model, shard, tier)` keys instead of growing monotonically across
//! every key ever seen (and keeping dead models' buckets alive after
//! re-registration).

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use mega::sync::{Condvar, Mutex};

use crate::poison::LockRecoverExt;
use std::time::{Duration, Instant};

use crate::request::{InferenceRequest, ModelKey, UpdateRequest};
use crate::trace::TraceStage;
use crate::worker::WorkRouter;

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Flush a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a non-empty bucket once its oldest request has waited this
    /// long.
    pub max_delay: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Why a batch left the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The bucket reached `max_batch`.
    Size,
    /// The bucket's oldest request hit `max_delay`.
    Deadline,
    /// A graph update to the same model flushed the bucket ahead of
    /// itself.
    Barrier,
    /// The engine is draining (shutdown or explicit flush).
    Drain,
}

/// A coalesced unit of work for one (model, shard, tier) bucket.
#[derive(Debug)]
pub struct Batch {
    /// The model every request in the batch targets.
    pub model: ModelKey,
    /// The shard owning every node in the batch.
    pub shard: u32,
    /// The precision tier every request in the batch belongs to.
    pub tier: usize,
    /// The requests, in arrival order.
    pub requests: Vec<InferenceRequest>,
    /// Why the batch was flushed.
    pub reason: FlushReason,
}

/// What the scheduler hands the worker pool.
#[derive(Debug)]
pub enum WorkItem {
    /// A coalesced inference batch.
    Batch(Batch),
    /// Fault injection: panics worker lane `lane % lanes` on dequeue, for
    /// exercising `/healthz` lane-death detection in tests. Never emitted
    /// by the scheduler itself.
    Poison(usize),
    /// A token for one pending graph update to this model; the payload is
    /// popped from the scheduler's per-model FIFO
    /// ([`BatchScheduler::take_update`]).
    Update(ModelKey),
}

/// A non-empty run of same-key requests. Buckets only exist while they
/// hold requests — draining one removes it from the map (pruning), so
/// `oldest` is always the arrival of the first resident request.
struct Bucket {
    requests: Vec<InferenceRequest>,
    oldest: Instant,
}

/// The per-model FIFO parking update payloads between
/// [`BatchScheduler::submit_update`] and the worker that receives the
/// matching [`WorkItem::Update`] token. A separate shared structure (not
/// part of the scheduler) so workers can hold it without keeping the
/// scheduler's work `Sender` alive — that would deadlock shutdown.
#[derive(Default)]
pub struct UpdateQueue {
    queues: Mutex<HashMap<ModelKey, VecDeque<UpdateRequest>>>,
}

impl UpdateQueue {
    fn push(&self, request: UpdateRequest) {
        self.queues
            .lock()
            .recover("update-queue")
            .entry(request.model.clone())
            .or_default()
            .push_back(request);
    }

    /// Pops the oldest pending update for `model`. FIFO order is the
    /// per-model update serialization guarantee, no matter which worker
    /// handles which token.
    pub fn pop(&self, model: &ModelKey) -> Option<UpdateRequest> {
        self.queues
            .lock()
            .recover("update-queue")
            .get_mut(model)?
            .pop_front()
    }

    /// Number of parked updates across all models.
    pub fn pending(&self) -> usize {
        self.queues
            .lock()
            .recover("update-queue")
            .values()
            .map(VecDeque::len)
            .sum()
    }
}

/// A bucket's identity: (model, shard, tier).
type BucketKey = (ModelKey, u32, usize);

/// Size- and deadline-triggered request coalescer plus the per-model
/// update FIFO.
pub struct BatchScheduler {
    config: SchedulerConfig,
    buckets: Mutex<HashMap<BucketKey, Bucket>>,
    updates: Arc<UpdateQueue>,
    out: WorkRouter,
    /// Wakeup generation for the deadline sweeper: bumped (with a
    /// notify) whenever a submit advances the earliest pending deadline
    /// or the engine wants the sweeper to re-evaluate (shutdown). The
    /// sweeper parks on the condvar until the earliest deadline or a
    /// generation bump — never on a fixed poll interval.
    sweep_gen: Mutex<u64>,
    sweep_cv: Condvar,
}

impl BatchScheduler {
    /// A scheduler emitting work through `out` (which pins each
    /// `(model, shard)` to a worker lane). Dropping the scheduler drops the
    /// router — and with it every lane sender — which is what lets the
    /// worker pool drain and exit at shutdown.
    pub fn new(config: SchedulerConfig, out: WorkRouter) -> Self {
        Self::with_updates(config, out, Arc::new(UpdateQueue::default()))
    }

    /// Like [`BatchScheduler::new`], but parking update payloads in an
    /// externally owned FIFO (the engine shares it with the worker pool,
    /// which must outlive the scheduler's router).
    pub fn with_updates(
        config: SchedulerConfig,
        out: WorkRouter,
        updates: Arc<UpdateQueue>,
    ) -> Self {
        Self {
            config,
            buckets: Mutex::new(HashMap::new()),
            updates,
            out,
            sweep_gen: Mutex::new(0),
            sweep_cv: Condvar::new(),
        }
    }

    /// The shared FIFO workers pop update payloads from.
    pub fn update_queue(&self) -> Arc<UpdateQueue> {
        self.updates.clone()
    }

    /// The configured knobs.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Enqueues one request; flushes its bucket if that fills it. Returns
    /// `true` if a batch was emitted.
    ///
    /// The request's `tier` stamps the *bucket* it coalesces into; the
    /// worker restamps tier/bits from the live artifacts at execution
    /// time, so a concurrent re-tier between submit and execution can at
    /// worst cost batching homogeneity, never answer accuracy.
    pub fn submit(&self, mut request: InferenceRequest) -> bool {
        request.trace.stamp(TraceStage::Enqueued);
        let key = (request.model.clone(), request.shard, request.tier);
        let mut buckets = self.buckets.lock().recover("scheduler-buckets");
        // Every bucket shares `max_delay`, so the earliest deadline
        // belongs to the minimum `oldest`. The sweeper needs a wake only
        // when this submit *advances* that minimum: the scheduler went
        // empty → non-empty, or (rare) this request's `submitted_at` —
        // stamped before the scheduler lock, so a stalled submitter can
        // carry an older timestamp than every resident bucket — creates a
        // bucket older than the one the sweeper is parked on.
        let prev_min_oldest = buckets.values().map(|b| b.oldest).min();
        let mut rearmed = false;
        let bucket = buckets.entry(key.clone()).or_insert_with(|| {
            rearmed = prev_min_oldest.is_none_or(|min| request.submitted_at < min);
            Bucket {
                requests: Vec::new(),
                oldest: request.submitted_at,
            }
        });
        bucket.requests.push(request);
        if bucket.requests.len() >= self.config.max_batch {
            let bucket = buckets.remove(&key).expect("bucket just filled");
            drop(buckets);
            self.emit(key.0, key.1, key.2, bucket.requests, FlushReason::Size);
            true
        } else {
            drop(buckets);
            if rearmed {
                self.wake_sweeper();
            }
            false
        }
    }

    /// Enqueues one graph update: flushes the model's pending inference
    /// buckets ahead of it (barrier), parks the payload in the model's
    /// FIFO, and emits an update token to the worker pool.
    pub fn submit_update(&self, request: UpdateRequest) {
        let model = request.model.clone();
        self.flush_model(&model);
        self.updates.push(request);
        // Receiver gone means the engine is shutting down; the update
        // stays in the FIFO and is dropped with the scheduler.
        self.out.send(WorkItem::Update(model));
    }

    /// Pops the oldest pending update for `model` (delegates to the shared
    /// [`UpdateQueue`]).
    pub fn take_update(&self, model: &ModelKey) -> Option<UpdateRequest> {
        self.updates.pop(model)
    }

    /// Flushes every bucket of `model` regardless of age. Returns the
    /// number of batches emitted.
    pub fn flush_model(&self, model: &ModelKey) -> usize {
        let drained: Vec<(BucketKey, Vec<InferenceRequest>)> = {
            let mut buckets = self.buckets.lock().recover("scheduler-buckets");
            let keys: Vec<BucketKey> = buckets
                .keys()
                .filter(|(m, _, _)| m == model)
                .cloned()
                .collect();
            keys.into_iter()
                .map(|k| {
                    let bucket = buckets.remove(&k).expect("key just listed");
                    (k, bucket.requests)
                })
                .collect()
        };
        let count = drained.len();
        for ((model, shard, tier), requests) in drained {
            self.emit(model, shard, tier, requests, FlushReason::Barrier);
        }
        count
    }

    /// Flushes (and prunes) every bucket whose oldest request has waited
    /// at least `max_delay` as of `now`. Returns the number of batches
    /// emitted. Called by the engine's deadline sweeper when a deadline
    /// fires; taking `now` as a parameter keeps the policy unit-testable
    /// without sleeping.
    pub fn poll_deadlines(&self, now: Instant) -> usize {
        let expired: Vec<(BucketKey, Vec<InferenceRequest>)> = {
            let mut buckets = self.buckets.lock().recover("scheduler-buckets");
            let keys: Vec<BucketKey> = buckets
                .iter()
                .filter(|(_, b)| now.duration_since(b.oldest) >= self.config.max_delay)
                .map(|(k, _)| k.clone())
                .collect();
            keys.into_iter()
                .map(|k| {
                    let bucket = buckets.remove(&k).expect("key just listed");
                    (k, bucket.requests)
                })
                .collect()
        };
        let count = expired.len();
        for ((model, shard, tier), requests) in expired {
            self.emit(model, shard, tier, requests, FlushReason::Deadline);
        }
        count
    }

    /// Flushes everything regardless of age (drain/shutdown path). Returns
    /// the number of batches emitted.
    pub fn flush_all(&self) -> usize {
        let drained: HashMap<BucketKey, Bucket> = {
            let mut buckets = self.buckets.lock().recover("scheduler-buckets");
            std::mem::take(&mut *buckets)
        };
        let count = drained.len();
        for ((model, shard, tier), bucket) in drained {
            self.emit(model, shard, tier, bucket.requests, FlushReason::Drain);
        }
        count
    }

    /// Number of inference requests currently waiting in buckets.
    pub fn pending(&self) -> usize {
        self.buckets
            .lock()
            .recover("scheduler-buckets")
            .values()
            .map(|b| b.requests.len())
            .sum()
    }

    /// Number of resident buckets. Because drained buckets are pruned,
    /// this tracks the *live* set of `(model, shard, tier)` keys — it must
    /// shrink back to zero whenever the scheduler drains (the regression
    /// surface for unbounded bucket-map growth).
    pub fn bucket_count(&self) -> usize {
        self.buckets.lock().recover("scheduler-buckets").len()
    }

    /// The earliest pending deadline: when the sweeper must next flush.
    /// `None` when no requests are queued (the sweeper can park
    /// indefinitely). Every bucket shares `max_delay`, so this is the
    /// oldest bucket's arrival plus the delay bound.
    pub fn next_deadline(&self) -> Option<Instant> {
        self.buckets
            .lock()
            .recover("scheduler-buckets")
            .values()
            .map(|b| b.oldest)
            .min()
            .map(|oldest| oldest + self.config.max_delay)
    }

    /// The current sweeper wakeup generation. Capture it *before*
    /// computing [`BatchScheduler::next_deadline`], then pass both to
    /// [`BatchScheduler::sweeper_park`]: any re-arm between the capture
    /// and the park bumps the generation and the park returns immediately,
    /// so a wakeup can never be lost to that race.
    pub fn sweep_generation(&self) -> u64 {
        *self.sweep_gen.lock().recover("sweeper")
    }

    /// Blocks the calling (sweeper) thread until `deadline` passes, the
    /// wakeup generation moves past `gen`, or — with no deadline — a
    /// generation bump alone. Returns immediately when `gen` is already
    /// stale. This replaces the fixed-interval sleep poll: an idle
    /// scheduler parks its sweeper indefinitely (zero wakeups), and an
    /// armed one wakes exactly at the earliest deadline.
    pub fn sweeper_park(&self, gen: u64, deadline: Option<Instant>) {
        let mut current = self.sweep_gen.lock().recover("sweeper");
        loop {
            if *current != gen {
                return;
            }
            match deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return;
                    }
                    let (next, timeout) = self
                        .sweep_cv
                        .wait_timeout(current, deadline - now)
                        .recover("sweeper");
                    current = next;
                    if timeout.timed_out() {
                        return;
                    }
                }
                None => {
                    current = self.sweep_cv.wait(current).recover("sweeper");
                }
            }
        }
    }

    /// Bumps the wakeup generation and wakes a parked sweeper (deadline
    /// advances on the submit side and engine shutdown both come through
    /// here).
    pub fn wake_sweeper(&self) {
        let mut gen = self.sweep_gen.lock().recover("sweeper");
        *gen = gen.wrapping_add(1);
        self.sweep_cv.notify_all();
    }

    /// Number of updates parked in per-model FIFOs (token emitted, not yet
    /// taken by a worker).
    pub fn pending_updates(&self) -> usize {
        self.updates.pending()
    }

    /// Fault injection: sends a poison pill to worker lane
    /// `lane % lanes`, which panics that lane's thread on dequeue (see
    /// [`crate::ServeEngine::poison_lane`]).
    pub fn poison_lane(&self, lane: usize) {
        self.out.send(WorkItem::Poison(lane));
    }

    fn emit(
        &self,
        model: ModelKey,
        shard: u32,
        tier: usize,
        mut requests: Vec<InferenceRequest>,
        reason: FlushReason,
    ) {
        if requests.is_empty() {
            return;
        }
        // One clock read covers the whole batch.
        let now = Instant::now();
        for request in &mut requests {
            request.trace.stamp_at(TraceStage::Flushed, now);
        }
        // Receiver gone means the engine is shutting down; dropping the
        // batch here is fine because shutdown drains first.
        self.out.send(WorkItem::Batch(Batch {
            model,
            shard,
            tier,
            requests,
            reason,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::GnnKind;
    use mega_graph::GraphDelta;
    use std::sync::mpsc::{self, Receiver};

    fn request(id: u64, tier: usize, at: Instant) -> InferenceRequest {
        request_on_shard(id, 0, tier, at)
    }

    fn request_on_shard(id: u64, shard: u32, tier: usize, at: Instant) -> InferenceRequest {
        InferenceRequest {
            id,
            model: ModelKey::new("Cora", GnnKind::Gcn),
            node: id as u32,
            shard,
            tier,
            bits: 2,
            submitted_at: at,
            trace: crate::trace::RequestTrace::begin(),
        }
    }

    fn recv_batch(rx: &Receiver<WorkItem>) -> Batch {
        match rx.try_recv().expect("work item emitted") {
            WorkItem::Batch(batch) => batch,
            WorkItem::Update(key) => panic!("expected batch, got update token for {key}"),
            WorkItem::Poison(lane) => panic!("expected batch, got poison pill for lane {lane}"),
        }
    }

    #[test]
    fn size_triggered_flush_emits_full_batch() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(
            SchedulerConfig {
                max_batch: 3,
                max_delay: Duration::from_secs(60),
            },
            WorkRouter::single(tx),
        );
        let now = Instant::now();
        assert!(!scheduler.submit(request(0, 0, now)));
        assert!(!scheduler.submit(request(1, 0, now)));
        assert!(scheduler.submit(request(2, 0, now)));
        let batch = recv_batch(&rx);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.reason, FlushReason::Size);
        assert_eq!(scheduler.pending(), 0);
    }

    #[test]
    fn tiers_bucket_independently() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(
            SchedulerConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(60),
            },
            WorkRouter::single(tx),
        );
        let now = Instant::now();
        scheduler.submit(request(0, 0, now));
        scheduler.submit(request(1, 1, now));
        assert!(rx.try_recv().is_err(), "no tier is full yet");
        scheduler.submit(request(2, 1, now));
        let batch = recv_batch(&rx);
        assert_eq!(batch.tier, 1);
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(scheduler.pending(), 1);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let (tx, rx) = mpsc::channel();
        let config = SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
        };
        let scheduler = BatchScheduler::new(config.clone(), WorkRouter::single(tx));
        let t0 = Instant::now();
        scheduler.submit(request(0, 0, t0));
        scheduler.submit(request(1, 0, t0));
        // Before the deadline nothing moves.
        assert_eq!(scheduler.poll_deadlines(t0 + Duration::from_millis(1)), 0);
        assert!(rx.try_recv().is_err());
        // At the deadline the partial batch flushes.
        assert_eq!(scheduler.poll_deadlines(t0 + config.max_delay), 1);
        let batch = recv_batch(&rx);
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(batch.reason, FlushReason::Deadline);
        assert_eq!(scheduler.pending(), 0);
        // Idempotent: nothing left to flush.
        assert_eq!(scheduler.poll_deadlines(t0 + Duration::from_secs(1)), 0);
    }

    #[test]
    fn flush_all_drains_every_bucket() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(SchedulerConfig::default(), WorkRouter::single(tx));
        let now = Instant::now();
        scheduler.submit(request(0, 0, now));
        scheduler.submit(request(1, 3, now));
        assert_eq!(scheduler.flush_all(), 2);
        let mut sizes: Vec<usize> = (0..2).map(|_| recv_batch(&rx).requests.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1]);
        assert_eq!(scheduler.flush_all(), 0);
    }

    /// Regression: the bucket map must shrink when buckets drain. It used
    /// to keep an empty `Bucket` per `(model, shard, tier)` key forever —
    /// unbounded growth across keys, and dead models' buckets staying
    /// alive after re-registration.
    #[test]
    fn drained_buckets_are_pruned_from_the_map() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(
            SchedulerConfig {
                max_batch: 2,
                max_delay: Duration::from_millis(5),
            },
            WorkRouter::single(tx),
        );
        let now = Instant::now();
        assert_eq!(scheduler.bucket_count(), 0);
        // Size flush prunes.
        scheduler.submit(request(0, 0, now));
        scheduler.submit(request(1, 0, now));
        assert_eq!(scheduler.bucket_count(), 0, "size flush removed the bucket");
        // Deadline flush prunes.
        scheduler.submit(request(2, 1, now));
        assert_eq!(scheduler.bucket_count(), 1);
        assert_eq!(scheduler.poll_deadlines(now + Duration::from_secs(1)), 1);
        assert_eq!(scheduler.bucket_count(), 0, "deadline flush removed it");
        // Barrier flush prunes only the target model; drain prunes the rest.
        let other = ModelKey::new("PubMed", GnnKind::Gcn);
        scheduler.submit(request(3, 2, now));
        scheduler.submit(InferenceRequest {
            model: other.clone(),
            ..request(4, 0, now)
        });
        assert_eq!(scheduler.bucket_count(), 2);
        scheduler.flush_model(&ModelKey::new("Cora", GnnKind::Gcn));
        assert_eq!(scheduler.bucket_count(), 1, "barrier pruned one model");
        scheduler.flush_all();
        assert_eq!(scheduler.bucket_count(), 0, "drain empties the map");
        // A burst over many distinct keys leaves nothing resident after
        // the drain — the map tracks the live working set, not history.
        for tier in 0..64 {
            scheduler.submit(request(100 + tier as u64, tier, now));
        }
        assert_eq!(scheduler.bucket_count(), 64);
        scheduler.flush_all();
        assert_eq!(scheduler.bucket_count(), 0);
        while rx.try_recv().is_ok() {}
    }

    #[test]
    fn next_deadline_follows_the_oldest_bucket() {
        let (tx, _rx) = mpsc::channel();
        let config = SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(10),
        };
        let scheduler = BatchScheduler::new(config.clone(), WorkRouter::single(tx));
        assert_eq!(scheduler.next_deadline(), None, "idle: park indefinitely");
        let t0 = Instant::now();
        scheduler.submit(request(0, 1, t0 + Duration::from_millis(3)));
        scheduler.submit(request(1, 0, t0));
        scheduler.submit(request(2, 2, t0 + Duration::from_millis(7)));
        assert_eq!(
            scheduler.next_deadline(),
            Some(t0 + config.max_delay),
            "earliest deadline belongs to the oldest bucket"
        );
        // Flushing the oldest moves the deadline to the next-oldest.
        assert_eq!(scheduler.poll_deadlines(t0 + config.max_delay), 1);
        assert_eq!(
            scheduler.next_deadline(),
            Some(t0 + Duration::from_millis(3) + config.max_delay)
        );
        scheduler.flush_all();
        assert_eq!(scheduler.next_deadline(), None);
    }

    #[test]
    fn sweeper_park_wakes_on_rearm_and_deadline() {
        let (tx, _rx) = mpsc::channel();
        let scheduler = Arc::new(BatchScheduler::new(
            SchedulerConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(60),
            },
            WorkRouter::single(tx),
        ));
        // Deadline in the past returns immediately.
        let gen = scheduler.sweep_generation();
        scheduler.sweeper_park(gen, Some(Instant::now() - Duration::from_millis(1)));
        // A stale generation returns immediately even with no deadline.
        scheduler.wake_sweeper();
        scheduler.sweeper_park(gen, None);
        // A submit into an empty scheduler wakes an indefinitely parked
        // sweeper (the empty → non-empty re-arm).
        let parked = {
            let scheduler = scheduler.clone();
            std::thread::spawn(move || {
                let gen = scheduler.sweep_generation();
                if scheduler.next_deadline().is_none() {
                    scheduler.sweeper_park(gen, None);
                }
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        scheduler.submit(request(0, 0, Instant::now()));
        parked.join().expect("parked sweeper woke on re-arm");
    }

    /// Regression: `submitted_at` is stamped *before* the scheduler lock,
    /// so a stalled submitter can create a bucket whose deadline precedes
    /// the one the sweeper is parked on. That submit must wake the
    /// sweeper — otherwise the older bucket flushes late.
    #[test]
    fn sweeper_wakes_when_an_older_bucket_arrives() {
        let (tx, _rx) = mpsc::channel();
        let scheduler = Arc::new(BatchScheduler::new(
            SchedulerConfig {
                max_batch: 64,
                max_delay: Duration::from_secs(60),
            },
            WorkRouter::single(tx),
        ));
        let now = Instant::now();
        // The sweeper is parked on this bucket's (far) deadline...
        scheduler.submit(request(0, 0, now));
        let deadline = scheduler.next_deadline().expect("armed");
        let parked = {
            let scheduler = scheduler.clone();
            std::thread::spawn(move || {
                let gen = scheduler.sweep_generation();
                scheduler.sweeper_park(gen, Some(deadline));
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        // ...when a stalled submitter lands a bucket stamped 5s EARLIER.
        // Its deadline is sooner than the parked one, so the park must
        // end now, not at the stale deadline (join would hang ~60s and
        // trip the test harness timeout if the wake were missed).
        scheduler.submit(request(1, 1, now - Duration::from_secs(5)));
        assert_eq!(
            scheduler.next_deadline().unwrap(),
            now - Duration::from_secs(5) + Duration::from_secs(60),
            "the older bucket owns the earliest deadline"
        );
        parked.join().expect("sweeper woke for the sooner deadline");
    }

    #[test]
    fn updates_barrier_their_model_and_queue_fifo() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(SchedulerConfig::default(), WorkRouter::single(tx));
        let now = Instant::now();
        let cora = ModelKey::new("Cora", GnnKind::Gcn);
        let other = ModelKey::new("PubMed", GnnKind::Gcn);
        scheduler.submit(request(0, 0, now));
        scheduler.submit(InferenceRequest {
            model: other.clone(),
            ..request(1, 0, now)
        });
        let update = |id: u64| {
            let mut delta = GraphDelta::new();
            delta.insert_edge(id as u32, 0);
            UpdateRequest {
                id,
                model: cora.clone(),
                delta,
                node_features: vec![],
                submitted_at: now,
            }
        };
        scheduler.submit_update(update(10));
        scheduler.submit_update(update(11));
        // The barrier flushed only Cora's bucket; PubMed's is still queued.
        let batch = recv_batch(&rx);
        assert_eq!(batch.model, cora);
        assert_eq!(batch.reason, FlushReason::Barrier);
        assert_eq!(scheduler.pending(), 1);
        // Two update tokens follow, and the FIFO pops in submit order.
        for expected in [10u64, 11] {
            match rx.try_recv().expect("update token") {
                WorkItem::Update(key) => assert_eq!(key, cora),
                WorkItem::Batch(_) => panic!("expected update token"),
                WorkItem::Poison(lane) => panic!("expected update token, got poison for {lane}"),
            }
            assert_eq!(scheduler.take_update(&cora).unwrap().id, expected);
        }
        assert_eq!(scheduler.pending_updates(), 0);
        assert!(scheduler.take_update(&cora).is_none());
    }
}
