//! The batch scheduler: buckets requests by (model, shard, precision tier)
//! and flushes size- or deadline-triggered batches to the worker pool.
//!
//! The scheduler only ever sees logits-cache *misses*: the engine answers
//! cache hits at submit time ([`crate::ServeEngine::submit`]), and workers
//! split out any requests whose node was cached between submission and
//! execution ([`crate::worker`]) before running the forward pass — so a
//! bucket's eventual batch shrinks to exactly the targets that still need
//! compute (partial-batch hit/miss splitting).
//!
//! Bucketing by tier keeps a batch's per-node bitwidths — and therefore its
//! per-row cost — homogeneous, so one slow hub node does not ride along
//! with (and delay) a batch of cheap leaf nodes. Bucketing by *shard* keeps
//! a batch inside one partition's adjacency/feature slice, so the
//! shard-affine worker that executes it never touches another shard's
//! memory (emission goes through [`crate::worker::WorkRouter`], which pins
//! each `(model, shard)` pair to one worker lane).
//!
//! Graph mutations ride the same output path as inference batches (wrapped
//! in [`WorkItem`]), so updates interleave with serving traffic on the
//! worker pool instead of stopping the world. An update first flushes the
//! target model's pending buckets ([`FlushReason::Barrier`]) so requests
//! admitted before it are not left queued behind it, then parks its payload
//! in a per-model FIFO ([`BatchScheduler::take_update`]) — workers pop from
//! that FIFO, which serializes updates per model in submission order no
//! matter which worker handles which token.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::request::{InferenceRequest, ModelKey, UpdateRequest};
use crate::worker::WorkRouter;

/// Scheduler knobs.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Flush a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Flush a non-empty bucket once its oldest request has waited this
    /// long.
    pub max_delay: Duration,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            max_delay: Duration::from_millis(2),
        }
    }
}

/// Why a batch left the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The bucket reached `max_batch`.
    Size,
    /// The bucket's oldest request hit `max_delay`.
    Deadline,
    /// A graph update to the same model flushed the bucket ahead of
    /// itself.
    Barrier,
    /// The engine is draining (shutdown or explicit flush).
    Drain,
}

/// A coalesced unit of work for one (model, shard, tier) bucket.
#[derive(Debug)]
pub struct Batch {
    /// The model every request in the batch targets.
    pub model: ModelKey,
    /// The shard owning every node in the batch.
    pub shard: u32,
    /// The precision tier every request in the batch belongs to.
    pub tier: usize,
    /// The requests, in arrival order.
    pub requests: Vec<InferenceRequest>,
    /// Why the batch was flushed.
    pub reason: FlushReason,
}

/// What the scheduler hands the worker pool.
#[derive(Debug)]
pub enum WorkItem {
    /// A coalesced inference batch.
    Batch(Batch),
    /// A token for one pending graph update to this model; the payload is
    /// popped from the scheduler's per-model FIFO
    /// ([`BatchScheduler::take_update`]).
    Update(ModelKey),
}

#[derive(Default)]
struct Bucket {
    requests: Vec<InferenceRequest>,
    oldest: Option<Instant>,
}

/// The per-model FIFO parking update payloads between
/// [`BatchScheduler::submit_update`] and the worker that receives the
/// matching [`WorkItem::Update`] token. A separate shared structure (not
/// part of the scheduler) so workers can hold it without keeping the
/// scheduler's work `Sender` alive — that would deadlock shutdown.
#[derive(Default)]
pub struct UpdateQueue {
    queues: Mutex<HashMap<ModelKey, VecDeque<UpdateRequest>>>,
}

impl UpdateQueue {
    fn push(&self, request: UpdateRequest) {
        self.queues
            .lock()
            .expect("update queue poisoned")
            .entry(request.model.clone())
            .or_default()
            .push_back(request);
    }

    /// Pops the oldest pending update for `model`. FIFO order is the
    /// per-model update serialization guarantee, no matter which worker
    /// handles which token.
    pub fn pop(&self, model: &ModelKey) -> Option<UpdateRequest> {
        self.queues
            .lock()
            .expect("update queue poisoned")
            .get_mut(model)?
            .pop_front()
    }

    /// Number of parked updates across all models.
    pub fn pending(&self) -> usize {
        self.queues
            .lock()
            .expect("update queue poisoned")
            .values()
            .map(VecDeque::len)
            .sum()
    }
}

/// A bucket's identity: (model, shard, tier).
type BucketKey = (ModelKey, u32, usize);

/// Size- and deadline-triggered request coalescer plus the per-model
/// update FIFO.
pub struct BatchScheduler {
    config: SchedulerConfig,
    buckets: Mutex<HashMap<BucketKey, Bucket>>,
    updates: Arc<UpdateQueue>,
    out: WorkRouter,
}

impl BatchScheduler {
    /// A scheduler emitting work through `out` (which pins each
    /// `(model, shard)` to a worker lane). Dropping the scheduler drops the
    /// router — and with it every lane sender — which is what lets the
    /// worker pool drain and exit at shutdown.
    pub fn new(config: SchedulerConfig, out: WorkRouter) -> Self {
        Self::with_updates(config, out, Arc::new(UpdateQueue::default()))
    }

    /// Like [`BatchScheduler::new`], but parking update payloads in an
    /// externally owned FIFO (the engine shares it with the worker pool,
    /// which must outlive the scheduler's router).
    pub fn with_updates(
        config: SchedulerConfig,
        out: WorkRouter,
        updates: Arc<UpdateQueue>,
    ) -> Self {
        Self {
            config,
            buckets: Mutex::new(HashMap::new()),
            updates,
            out,
        }
    }

    /// The shared FIFO workers pop update payloads from.
    pub fn update_queue(&self) -> Arc<UpdateQueue> {
        self.updates.clone()
    }

    /// The configured knobs.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Enqueues one request; flushes its bucket if that fills it. Returns
    /// `true` if a batch was emitted.
    pub fn submit(&self, request: InferenceRequest) -> bool {
        let key = (request.model.clone(), request.shard, request.tier);
        let mut buckets = self.buckets.lock().expect("scheduler lock poisoned");
        let bucket = buckets.entry(key.clone()).or_default();
        if bucket.requests.is_empty() {
            bucket.oldest = Some(request.submitted_at);
        }
        bucket.requests.push(request);
        if bucket.requests.len() >= self.config.max_batch {
            let requests = std::mem::take(&mut bucket.requests);
            bucket.oldest = None;
            drop(buckets);
            self.emit(key.0, key.1, key.2, requests, FlushReason::Size);
            true
        } else {
            false
        }
    }

    /// Enqueues one graph update: flushes the model's pending inference
    /// buckets ahead of it (barrier), parks the payload in the model's
    /// FIFO, and emits an update token to the worker pool.
    pub fn submit_update(&self, request: UpdateRequest) {
        let model = request.model.clone();
        self.flush_model(&model);
        self.updates.push(request);
        // Receiver gone means the engine is shutting down; the update
        // stays in the FIFO and is dropped with the scheduler.
        self.out.send(WorkItem::Update(model));
    }

    /// Pops the oldest pending update for `model` (delegates to the shared
    /// [`UpdateQueue`]).
    pub fn take_update(&self, model: &ModelKey) -> Option<UpdateRequest> {
        self.updates.pop(model)
    }

    /// Flushes every bucket of `model` regardless of age. Returns the
    /// number of batches emitted.
    pub fn flush_model(&self, model: &ModelKey) -> usize {
        let drained: Vec<(BucketKey, Vec<InferenceRequest>)> = {
            let mut buckets = self.buckets.lock().expect("scheduler lock poisoned");
            buckets
                .iter_mut()
                .filter(|((m, _, _), b)| m == model && !b.requests.is_empty())
                .map(|(k, b)| {
                    b.oldest = None;
                    (k.clone(), std::mem::take(&mut b.requests))
                })
                .collect()
        };
        let count = drained.len();
        for ((model, shard, tier), requests) in drained {
            self.emit(model, shard, tier, requests, FlushReason::Barrier);
        }
        count
    }

    /// Flushes every bucket whose oldest request has waited at least
    /// `max_delay` as of `now`. Returns the number of batches emitted.
    /// Called periodically by the engine's deadline sweeper; taking `now`
    /// as a parameter keeps the policy unit-testable without sleeping.
    pub fn poll_deadlines(&self, now: Instant) -> usize {
        let expired: Vec<(BucketKey, Vec<InferenceRequest>)> = {
            let mut buckets = self.buckets.lock().expect("scheduler lock poisoned");
            let keys: Vec<BucketKey> = buckets
                .iter()
                .filter(|(_, b)| {
                    b.oldest
                        .map(|t| now.duration_since(t) >= self.config.max_delay)
                        .unwrap_or(false)
                })
                .map(|(k, _)| k.clone())
                .collect();
            keys.into_iter()
                .map(|k| {
                    let bucket = buckets.get_mut(&k).expect("bucket exists");
                    let requests = std::mem::take(&mut bucket.requests);
                    bucket.oldest = None;
                    (k, requests)
                })
                .collect()
        };
        let count = expired.len();
        for ((model, shard, tier), requests) in expired {
            self.emit(model, shard, tier, requests, FlushReason::Deadline);
        }
        count
    }

    /// Flushes everything regardless of age (drain/shutdown path). Returns
    /// the number of batches emitted.
    pub fn flush_all(&self) -> usize {
        let drained: Vec<(BucketKey, Vec<InferenceRequest>)> = {
            let mut buckets = self.buckets.lock().expect("scheduler lock poisoned");
            buckets
                .iter_mut()
                .filter(|(_, b)| !b.requests.is_empty())
                .map(|(k, b)| {
                    b.oldest = None;
                    (k.clone(), std::mem::take(&mut b.requests))
                })
                .collect()
        };
        let count = drained.len();
        for ((model, shard, tier), requests) in drained {
            self.emit(model, shard, tier, requests, FlushReason::Drain);
        }
        count
    }

    /// Number of inference requests currently waiting in buckets.
    pub fn pending(&self) -> usize {
        self.buckets
            .lock()
            .expect("scheduler lock poisoned")
            .values()
            .map(|b| b.requests.len())
            .sum()
    }

    /// Number of updates parked in per-model FIFOs (token emitted, not yet
    /// taken by a worker).
    pub fn pending_updates(&self) -> usize {
        self.updates.pending()
    }

    fn emit(
        &self,
        model: ModelKey,
        shard: u32,
        tier: usize,
        requests: Vec<InferenceRequest>,
        reason: FlushReason,
    ) {
        if requests.is_empty() {
            return;
        }
        // Receiver gone means the engine is shutting down; dropping the
        // batch here is fine because shutdown drains first.
        self.out.send(WorkItem::Batch(Batch {
            model,
            shard,
            tier,
            requests,
            reason,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::GnnKind;
    use mega_graph::GraphDelta;
    use std::sync::mpsc::{self, Receiver};

    fn request(id: u64, tier: usize, at: Instant) -> InferenceRequest {
        request_on_shard(id, 0, tier, at)
    }

    fn request_on_shard(id: u64, shard: u32, tier: usize, at: Instant) -> InferenceRequest {
        InferenceRequest {
            id,
            model: ModelKey::new("Cora", GnnKind::Gcn),
            node: id as u32,
            shard,
            tier,
            bits: 2,
            submitted_at: at,
        }
    }

    fn recv_batch(rx: &Receiver<WorkItem>) -> Batch {
        match rx.try_recv().expect("work item emitted") {
            WorkItem::Batch(batch) => batch,
            WorkItem::Update(key) => panic!("expected batch, got update token for {key}"),
        }
    }

    #[test]
    fn size_triggered_flush_emits_full_batch() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(
            SchedulerConfig {
                max_batch: 3,
                max_delay: Duration::from_secs(60),
            },
            WorkRouter::single(tx),
        );
        let now = Instant::now();
        assert!(!scheduler.submit(request(0, 0, now)));
        assert!(!scheduler.submit(request(1, 0, now)));
        assert!(scheduler.submit(request(2, 0, now)));
        let batch = recv_batch(&rx);
        assert_eq!(batch.requests.len(), 3);
        assert_eq!(batch.reason, FlushReason::Size);
        assert_eq!(scheduler.pending(), 0);
    }

    #[test]
    fn tiers_bucket_independently() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(
            SchedulerConfig {
                max_batch: 2,
                max_delay: Duration::from_secs(60),
            },
            WorkRouter::single(tx),
        );
        let now = Instant::now();
        scheduler.submit(request(0, 0, now));
        scheduler.submit(request(1, 1, now));
        assert!(rx.try_recv().is_err(), "no tier is full yet");
        scheduler.submit(request(2, 1, now));
        let batch = recv_batch(&rx);
        assert_eq!(batch.tier, 1);
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(scheduler.pending(), 1);
    }

    #[test]
    fn deadline_flushes_partial_batch() {
        let (tx, rx) = mpsc::channel();
        let config = SchedulerConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(5),
        };
        let scheduler = BatchScheduler::new(config.clone(), WorkRouter::single(tx));
        let t0 = Instant::now();
        scheduler.submit(request(0, 0, t0));
        scheduler.submit(request(1, 0, t0));
        // Before the deadline nothing moves.
        assert_eq!(scheduler.poll_deadlines(t0 + Duration::from_millis(1)), 0);
        assert!(rx.try_recv().is_err());
        // At the deadline the partial batch flushes.
        assert_eq!(scheduler.poll_deadlines(t0 + config.max_delay), 1);
        let batch = recv_batch(&rx);
        assert_eq!(batch.requests.len(), 2);
        assert_eq!(batch.reason, FlushReason::Deadline);
        assert_eq!(scheduler.pending(), 0);
        // Idempotent: nothing left to flush.
        assert_eq!(scheduler.poll_deadlines(t0 + Duration::from_secs(1)), 0);
    }

    #[test]
    fn flush_all_drains_every_bucket() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(SchedulerConfig::default(), WorkRouter::single(tx));
        let now = Instant::now();
        scheduler.submit(request(0, 0, now));
        scheduler.submit(request(1, 3, now));
        assert_eq!(scheduler.flush_all(), 2);
        let mut sizes: Vec<usize> = (0..2).map(|_| recv_batch(&rx).requests.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1]);
        assert_eq!(scheduler.flush_all(), 0);
    }

    #[test]
    fn updates_barrier_their_model_and_queue_fifo() {
        let (tx, rx) = mpsc::channel();
        let scheduler = BatchScheduler::new(SchedulerConfig::default(), WorkRouter::single(tx));
        let now = Instant::now();
        let cora = ModelKey::new("Cora", GnnKind::Gcn);
        let other = ModelKey::new("PubMed", GnnKind::Gcn);
        scheduler.submit(request(0, 0, now));
        scheduler.submit(InferenceRequest {
            model: other.clone(),
            ..request(1, 0, now)
        });
        let update = |id: u64| {
            let mut delta = GraphDelta::new();
            delta.insert_edge(id as u32, 0);
            UpdateRequest {
                id,
                model: cora.clone(),
                delta,
                node_features: vec![],
                submitted_at: now,
            }
        };
        scheduler.submit_update(update(10));
        scheduler.submit_update(update(11));
        // The barrier flushed only Cora's bucket; PubMed's is still queued.
        let batch = recv_batch(&rx);
        assert_eq!(batch.model, cora);
        assert_eq!(batch.reason, FlushReason::Barrier);
        assert_eq!(scheduler.pending(), 1);
        // Two update tokens follow, and the FIFO pops in submit order.
        for expected in [10u64, 11] {
            match rx.try_recv().expect("update token") {
                WorkItem::Update(key) => assert_eq!(key, cora),
                WorkItem::Batch(_) => panic!("expected update token"),
            }
            assert_eq!(scheduler.take_update(&cora).unwrap().id, expected);
        }
        assert_eq!(scheduler.pending_updates(), 0);
        assert!(scheduler.take_update(&cora).is_none());
    }
}
