//! Heavy per-model artifacts and the LRU cache that shares them across
//! workers.
//!
//! Building a model's artifacts (materializing the dataset, normalizing the
//! adjacency, partitioning the graph, quantizing weights and features) costs
//! seconds; serving one request costs microseconds. The cache keeps the
//! `capacity` most-recently-used artifact sets alive behind `Arc`s so every
//! worker shares one copy, and builds each missing entry exactly once even
//! under concurrent first access.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use mega_gnn::{build_adjacency, Gnn, ModelConfig};
use mega_graph::datasets::Features;
use mega_graph::{Dataset, NodeId};
use mega_partition::{partition, PartitionConfig, Partitioning};
use mega_quant::quantizer::{fake_quantize, qmax};
use mega_quant::DegreePolicy;
use mega_tensor::{CsrMatrix, Matrix};

use crate::registry::ModelSpec;
use crate::request::ModelKey;

/// Everything a worker needs to execute batches for one model, fully
/// immutable and shared.
pub struct ModelArtifacts {
    /// The key these artifacts serve.
    pub key: ModelKey,
    /// Materialized dataset with offline fake-quantized input features.
    pub dataset: Dataset,
    /// Model with fake-quantized weights.
    pub model: Gnn,
    /// Normalized adjacency `Ã` (rows = destinations).
    pub adjacency: CsrMatrix,
    /// Per-node activation bitwidth from the degree-aware policy.
    pub bits: Vec<u8>,
    /// Per-node precision tier (0 = fewest bits).
    pub tiers: Vec<usize>,
    /// Graph partitioning used for batch locality ordering.
    pub partitioning: Partitioning,
    /// The policy that produced `bits`/`tiers`.
    pub policy: DegreePolicy,
}

/// Symmetric per-row fake quantization with a dynamic scale
/// (`α = max|x| / qmax`). Deterministic in the row contents alone, which is
/// what keeps batched and sequential execution bit-exact.
pub fn quantize_row(row: &mut [f32], bits: u8) {
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let alpha = max_abs / qmax(bits) as f32;
    for x in row.iter_mut() {
        *x = fake_quantize(*x, alpha, bits);
    }
}

impl ModelArtifacts {
    /// Builds everything from a registered spec.
    ///
    /// # Panics
    ///
    /// Panics if the dataset materializes without dense features (serving
    /// needs feature values; NELL-sized specs exceed the dense budget).
    pub fn build(spec: &ModelSpec) -> Self {
        let mut dataset = spec.dataset.materialize();
        assert!(
            dataset.has_features(),
            "{} materialized without dense features; serving needs them",
            spec.dataset.name
        );
        let bits = spec.policy.profile(&dataset.graph);
        let tiers: Vec<usize> = (0..dataset.graph.num_nodes())
            .map(|v| spec.policy.tier_of_degree(dataset.graph.in_degree(v)))
            .collect();

        // Input features are constant, so quantize them offline. Binary
        // bag-of-words inputs go to 1 bit regardless of degree (mirrors
        // `mega::workloads::build_quantized`); denser inputs follow the
        // degree profile.
        let input_bits: Vec<u8> = if spec.dataset.feature_density < 0.05 {
            vec![1; bits.len()]
        } else {
            bits.clone()
        };
        let features = dataset.features();
        let (rows, dim) = (features.rows(), features.dim());
        let mut data = features.data().to_vec();
        for (v, chunk) in data.chunks_mut(dim).enumerate() {
            quantize_row(chunk, input_bits[v]);
        }
        dataset.features = Some(Features::from_vec(rows, dim, data));

        // Weights are static too: per-layer symmetric fake quantization.
        let config = ModelConfig::for_dataset(spec.kind, &dataset);
        let trained = Gnn::new(config.clone());
        let weights: Vec<Matrix> = trained
            .weights()
            .iter()
            .map(|w| {
                let mut m = w.clone();
                quantize_row(m.as_mut_slice(), spec.weight_bits);
                m
            })
            .collect();
        let biases = trained.biases().to_vec();
        let model = Gnn::from_parts(config, weights, biases);

        let adjacency_rc = build_adjacency(&dataset.graph, spec.kind.aggregator(spec.dataset.seed));
        let adjacency = std::rc::Rc::try_unwrap(adjacency_rc).unwrap_or_else(|rc| (*rc).clone());

        let k = spec.partitions.clamp(1, dataset.graph.num_nodes().max(1));
        let partitioning = partition(
            &dataset.graph,
            &PartitionConfig::new(k).with_seed(spec.dataset.seed),
        );

        Self {
            key: spec.key(),
            dataset,
            model,
            adjacency,
            bits,
            tiers,
            partitioning,
            policy: spec.policy.clone(),
        }
    }

    /// Number of nodes this model serves.
    pub fn num_nodes(&self) -> usize {
        self.dataset.graph.num_nodes()
    }

    /// The activation bitwidth served to `node`.
    pub fn node_bits(&self, node: NodeId) -> u8 {
        self.bits[node as usize]
    }

    /// The precision tier of `node`.
    pub fn node_tier(&self, node: NodeId) -> usize {
        self.tiers[node as usize]
    }
}

struct Slot {
    entry: Arc<OnceLock<Arc<ModelArtifacts>>>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<ModelKey, Slot>,
    tick: u64,
}

/// LRU cache of [`ModelArtifacts`] keyed by [`ModelKey`].
pub struct ArtifactCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// A cache holding at most `capacity` artifact sets.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the artifacts for `key`, building them with `build` on a
    /// miss. Concurrent first accesses to the same key build once; builds
    /// for *different* keys proceed in parallel (the map lock is not held
    /// while building).
    pub fn get_or_build(
        &self,
        key: &ModelKey,
        build: impl FnOnce() -> ModelArtifacts,
    ) -> Arc<ModelArtifacts> {
        let entry = {
            let mut inner = self.inner.lock().expect("cache lock poisoned");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(key) {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.entry.clone()
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // Evict the least-recently-used entry first so the map
                // never exceeds capacity.
                if inner.map.len() >= self.capacity {
                    if let Some(lru) = inner
                        .map
                        .iter()
                        .min_by_key(|(_, slot)| slot.last_used)
                        .map(|(k, _)| k.clone())
                    {
                        inner.map.remove(&lru);
                    }
                }
                let entry = Arc::new(OnceLock::new());
                inner.map.insert(
                    key.clone(),
                    Slot {
                        entry: entry.clone(),
                        last_used: tick,
                    },
                );
                entry
            }
        };
        entry.get_or_init(|| Arc::new(build())).clone()
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::GnnKind;
    use mega_graph::DatasetSpec;

    fn tiny_spec(name_seed: u64) -> ModelSpec {
        let mut dataset = DatasetSpec::cora().scaled(0.05).with_feature_dim(32);
        dataset.seed ^= name_seed;
        dataset.name = format!("Tiny{name_seed}");
        ModelSpec::standard(dataset, GnnKind::Gcn)
    }

    #[test]
    fn artifacts_expose_consistent_per_node_metadata() {
        let spec = tiny_spec(0);
        let a = ModelArtifacts::build(&spec);
        assert_eq!(a.bits.len(), a.num_nodes());
        assert_eq!(a.tiers.len(), a.num_nodes());
        for v in 0..a.num_nodes() as NodeId {
            assert_eq!(a.policy.tier_bits(a.node_tier(v)), a.node_bits(v));
        }
        assert_eq!(a.adjacency.rows(), a.num_nodes());
        assert_eq!(a.partitioning.assignment().len(), a.num_nodes());
    }

    #[test]
    fn quantize_row_is_idempotent_and_bounded() {
        let mut row = vec![0.5f32, -1.5, 0.0, 3.2];
        quantize_row(&mut row, 4);
        let once = row.clone();
        quantize_row(&mut row, 4);
        // Levels stay on the same grid after requantization.
        for (a, b) in once.iter().zip(&row) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(row[2], 0.0);
        let mut zeros = vec![0.0f32; 4];
        quantize_row(&mut zeros, 2);
        assert!(zeros.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn cache_hits_misses_and_evicts() {
        let cache = ArtifactCache::new(2);
        let s0 = tiny_spec(0);
        let s1 = tiny_spec(1);
        let s2 = tiny_spec(2);
        let a0 = cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        let again = cache.get_or_build(&s0.key(), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a0, &again));
        cache.get_or_build(&s1.key(), || ModelArtifacts::build(&s1));
        cache.get_or_build(&s2.key(), || ModelArtifacts::build(&s2)); // evicts s0
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 3));
        // s0 was evicted: fetching it again is a miss that rebuilds.
        cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        assert_eq!(cache.stats(), (1, 4));
    }
}
