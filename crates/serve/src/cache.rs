//! Heavy per-model artifacts and the LRU cache that shares them across
//! workers.
//!
//! Building a model's artifacts (materializing the dataset, normalizing the
//! adjacency, partitioning the graph, quantizing weights and features) costs
//! seconds; serving one request costs microseconds. The cache keeps the
//! `capacity` most-recently-used artifact sets alive behind `Arc`s so every
//! worker shares one copy, and builds each missing entry exactly once even
//! under concurrent first access.
//!
//! Artifacts are no longer frozen at build time: each resident entry is a
//! [`ModelEntry`] wrapping the artifacts in an `RwLock`, and
//! [`ModelArtifacts::apply_delta`] advances them *incrementally* — graph
//! mutation through [`DynamicGraph`], normalized-adjacency row refresh
//! through [`DynAdjacency`], and re-quantization of exactly the feature
//! rows whose degree tier moved. Readers (batch execution) and the single
//! writer (an update) serialize on the lock, so a batch never observes a
//! half-applied mutation and stale artifacts are never served.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use mega::sync::{Mutex, RwLock, RwLockReadGuard};

use crate::poison::LockRecoverExt;

use mega_format::TierPackedFeatures;
use mega_gnn::{DynAdjacency, Gnn, ModelConfig, PackedGnn};
use mega_graph::datasets::{Features, RowSynth};
use mega_graph::{Dataset, DynamicGraph, GraphDelta, NodeId};
use mega_partition::{influence_closure_with, partition, PartitionConfig, Partitioning};
use mega_quant::quantizer::{dequantize, fake_quantize, qmax, quantize};
use mega_quant::DegreePolicy;

use crate::logits::LogitsCache;
use crate::registry::ModelSpec;
use crate::request::ModelKey;
use crate::shard::{ShardRefresh, ShardState};

/// A node whose serving precision changed because a mutation moved it
/// across a degree-tier boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retier {
    /// The node.
    pub node: NodeId,
    /// Tier before the mutation (0 = fewest bits).
    pub old_tier: usize,
    /// Tier after.
    pub new_tier: usize,
    /// Activation bitwidth before.
    pub old_bits: u8,
    /// Activation bitwidth after.
    pub new_bits: u8,
}

/// What [`ModelArtifacts::apply_delta`] changed.
#[derive(Debug, Clone, Default)]
pub struct UpdateEffect {
    /// Edges actually inserted.
    pub inserted_edges: usize,
    /// Edges actually removed.
    pub removed_edges: usize,
    /// Ids assigned to added nodes, in op order.
    pub added_nodes: Vec<NodeId>,
    /// Pre-existing nodes whose tier changed.
    pub retiered: Vec<Retier>,
    /// Adjacency rows refreshed by the incremental maintenance.
    pub dirty_rows: usize,
    /// Per-shard halo-exchange work this delta triggered (only shards the
    /// delta touched appear).
    pub shard_refreshes: Vec<ShardRefresh>,
    /// Cached logits dropped per shard because the delta reached their
    /// receptive field: `(shard, entries invalidated)`, only shards that
    /// actually dropped entries appear. Precise, not a flush — see
    /// [`ModelArtifacts::invalidation_closure`].
    pub logits_invalidated: Vec<(u32, usize)>,
    /// Shard balance after the delta: max owned count over the ideal
    /// `n/k` (1.0 = perfectly even). Tracks how well shard-aware
    /// placement of added nodes holds up under growth.
    pub balance: f64,
}

impl UpdateEffect {
    /// Total halo rows re-fetched across shards by this delta.
    pub fn halo_refreshed(&self) -> usize {
        self.shard_refreshes.iter().map(|r| r.halo_fetched).sum()
    }

    /// Total cached logits invalidated across shards by this delta.
    pub fn logits_invalidated_total(&self) -> usize {
        self.logits_invalidated.iter().map(|&(_, n)| n).sum()
    }
}

/// Where a model's *unquantized* source rows come from when re-tiering
/// needs them (re-quantizing an already-quantized row would compound
/// rounding). A resident f32 matrix is the exception, not the rule: it is
/// kept only for dense datasets that cannot regenerate rows on demand.
pub enum RawFeatures {
    /// Dense within-budget datasets: the materialized matrix, *moved* out
    /// of the dataset at build time (never a second copy).
    Resident(Features),
    /// Streaming `synth:*` datasets: any original row regenerates in
    /// `O(dim)` from the per-node synthesizer, so nothing is stored for
    /// them; only delta-added rows (which the synthesizer cannot produce)
    /// live in the overlay.
    Synth {
        /// Row-on-demand synthesizer, moved from the materialized dataset.
        synth: RowSynth,
        /// Raw rows of delta-added nodes, keyed by global id.
        overlay: HashMap<NodeId, Vec<f32>>,
    },
    /// Binary bag-of-words inputs quantize to 1 bit regardless of degree
    /// tier, so a pre-existing row is never re-quantized; added nodes
    /// quantize straight from the delta payload. Nothing is retained.
    Discarded,
}

impl RawFeatures {
    /// Approximate heap bytes held resident.
    pub fn resident_bytes(&self) -> usize {
        match self {
            Self::Resident(f) => std::mem::size_of_val(f.data()),
            Self::Synth { synth, overlay } => {
                synth.resident_bytes()
                    + overlay
                        .values()
                        .map(|row| std::mem::size_of_val(row.as_slice()))
                        .sum::<usize>()
            }
            Self::Discarded => 0,
        }
    }
}

/// Everything a worker needs to execute batches for one model. Immutable
/// from the forward pass's point of view; mutated only through
/// [`ModelArtifacts::apply_delta`] behind a [`ModelEntry`] write lock.
pub struct ModelArtifacts {
    /// The key these artifacts serve.
    pub key: ModelKey,
    /// Materialized dataset, kept for its spec, labels, and splits. Its
    /// `graph` is emptied after construction — the live topology is
    /// [`Self::graph`] (snapshot via `graph.to_graph()`); keeping the
    /// frozen registration-time copy around would both duplicate the
    /// topology per resident model and hand future callers a silently
    /// stale graph. Its `features` are emptied too: the serving
    /// representation is [`Self::packed_features`], and the unquantized
    /// source rows live in [`Self::raw_features`] (moved, not copied).
    pub dataset: Dataset,
    /// Model with fake-quantized weights.
    pub model: Gnn,
    /// The same weights in kernel form (integer levels + bit planes),
    /// built from one quantization pass with `model` so the two are the
    /// same numbers by construction.
    pub packed_model: PackedGnn,
    /// Input feature rows packed at rest in tier-contiguous bit-plane
    /// arenas — the *only* resident quantized representation; the kernels
    /// execute against it and [`ModelArtifacts::apply_delta`] keeps it
    /// current.
    pub packed_features: TierPackedFeatures,
    /// Live topology under mutation.
    pub graph: DynamicGraph,
    /// Normalized adjacency `Ã` (rows = destinations), incrementally
    /// maintained.
    pub adjacency: DynAdjacency,
    /// Unquantized source rows for re-quantization when a node changes
    /// tier — resident, regenerated on demand, or discarded depending on
    /// the dataset (see [`RawFeatures`]).
    pub raw_features: RawFeatures,
    /// Per-node activation bitwidth from the degree-aware policy.
    pub bits: Vec<u8>,
    /// Per-node precision tier (0 = fewest bits).
    pub tiers: Vec<usize>,
    /// The k-way partitioning shards are cut along. Doubles as the batch
    /// locality order; extended via [`Partitioning::push_balanced`] for
    /// added nodes, never re-partitioned in place.
    pub partitioning: Partitioning,
    /// Per-shard adjacency/feature slices (one per part), kept coherent
    /// with the global state by [`ModelArtifacts::apply_delta`]'s halo
    /// exchange. Batches execute against these, not the global arrays.
    pub shards: Vec<ShardState>,
    /// Per-shard logits caches, parallel to `shards` (a node's entry lives
    /// in its owning shard's cache). Kept sound by
    /// [`ModelArtifacts::apply_delta`], which drops exactly the entries
    /// whose receptive field a delta reached.
    pub logits: Vec<LogitsCache>,
    /// The policy that produced `bits`/`tiers`.
    pub policy: DegreePolicy,
    /// Weight bitwidth the model was quantized at (for hardware-model
    /// estimates).
    pub weight_bits: u8,
    /// Whether input rows follow the degree profile (dense inputs) or stay
    /// at 1 bit (binary bag-of-words).
    pub input_follows_degree: bool,
    /// Monotone mutation counter; bumped once per applied delta.
    pub version: u64,
}

/// Symmetric per-row fake quantization with a dynamic scale
/// (`α = max|x| / qmax`). Deterministic in the row contents alone, which is
/// what keeps batched and sequential execution bit-exact.
pub fn quantize_row(row: &mut [f32], bits: u8) {
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        return;
    }
    let alpha = max_abs / qmax(bits) as f32;
    for x in row.iter_mut() {
        *x = fake_quantize(*x, alpha, bits);
    }
}

/// [`quantize_row`] that also yields the integer levels and scale for the
/// packed mirror — one quantization pass feeds both representations, so
/// the f32 row and the bit-plane row cannot drift apart.
fn quantize_row_with_levels(row: &mut [f32], bits: u8, levels: &mut Vec<i32>) -> f32 {
    levels.clear();
    let max_abs = row.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
    if max_abs == 0.0 {
        levels.resize(row.len(), 0);
        return 0.0;
    }
    let alpha = max_abs / qmax(bits) as f32;
    for x in row.iter_mut() {
        let level = quantize(*x, alpha, bits);
        levels.push(level);
        *x = dequantize(level, alpha);
    }
    alpha
}

impl ModelArtifacts {
    /// Builds everything from a registered spec.
    ///
    /// # Panics
    ///
    /// Panics if the dataset materializes with neither dense features nor
    /// a row synthesizer (serving needs feature values; NELL-sized specs
    /// exceed the dense budget and do not stream).
    pub fn build(spec: &ModelSpec) -> Self {
        let mut dataset = spec.dataset.materialize();
        assert!(
            dataset.has_features() || dataset.synth.is_some(),
            "{} materialized with neither dense features nor a row synthesizer; serving needs one",
            spec.dataset.name
        );
        let bits = spec.policy.profile(&dataset.graph);
        let tiers: Vec<usize> = (0..dataset.graph.num_nodes())
            .map(|v| spec.policy.tier_of_degree(dataset.graph.in_degree(v)))
            .collect();

        // Input features are constant between mutations, so quantize them
        // offline, one row at a time through a scratch buffer — peak
        // memory stays O(dim) over the source rows even for streaming
        // million-node datasets. Binary bag-of-words inputs go to 1 bit
        // regardless of degree (mirrors `mega::workloads::build_quantized`);
        // denser inputs follow the degree profile.
        let input_follows_degree = spec.dataset.feature_density >= 0.05;
        let dim = dataset.spec.feature_dim;
        let mut packed_features = TierPackedFeatures::new(dim);
        let mut levels = Vec::with_capacity(dim);
        let mut scratch = vec![0.0f32; dim];
        for (v, &node_bits) in bits.iter().enumerate().take(dataset.graph.num_nodes()) {
            dataset.fill_row(v, &mut scratch);
            let input_bits = if input_follows_degree { node_bits } else { 1 };
            let alpha = quantize_row_with_levels(&mut scratch, input_bits, &mut levels);
            packed_features.push_row(&levels, input_bits, alpha);
        }
        // Keep unquantized sources only where re-tiering can actually
        // read them back: streaming datasets regenerate, 1-bit inputs
        // never re-quantize, dense matrices move (not copy) out of the
        // dataset. Either way `dataset.features` ends up empty.
        let raw_features = if let Some(synth) = dataset.synth.take() {
            RawFeatures::Synth {
                synth,
                overlay: HashMap::new(),
            }
        } else if input_follows_degree {
            RawFeatures::Resident(dataset.features.take().expect("asserted dense above"))
        } else {
            RawFeatures::Discarded
        };
        dataset.features = None;

        // Weights are static too: per-layer symmetric quantization, done
        // once — the kernel form and the fake-quantized f32 matrices come
        // out of the same levels.
        let config = ModelConfig::for_dataset(spec.kind, &dataset);
        let trained = Gnn::new(config.clone());
        let (packed_model, weights) = PackedGnn::from_model(&trained, spec.weight_bits);
        let biases = trained.biases().to_vec();
        let model = Gnn::from_parts(config, weights, biases);

        let graph = DynamicGraph::from_graph(&dataset.graph);
        let adjacency = DynAdjacency::build(&graph, spec.kind.aggregator(spec.dataset.seed));

        let k = spec.shards.clamp(1, dataset.graph.num_nodes().max(1));
        let partitioning = partition(
            &dataset.graph,
            &PartitionConfig::new(k).with_seed(spec.dataset.seed),
        );
        // One slice per part: local remapped adjacency + packed copies of
        // exactly the halo rows (owned rows read the global packed store).
        // The halo depth is the model's layer count so every owned
        // target's receptive field is resident.
        let hops = model.config().layers;
        let shards = (0..k as u32)
            .map(|p| {
                ShardState::extract(p, &partitioning, &graph, &adjacency, &packed_features, hops)
            })
            .collect();
        // The live topology is `graph`; drop the frozen snapshot so it can
        // neither waste memory nor serve stale degrees after mutations.
        dataset.graph = mega_graph::Graph::from_directed_edges(0, vec![]);

        // One logits cache per shard, splitting the model's byte budget
        // evenly. A nonzero model budget is clamped so every shard can
        // hold at least one logits row — otherwise a small budget over
        // many shards would round to less than one entry and silently
        // disable a cache the operator asked for. Weight/policy changes
        // only arrive via re-registration, which rebuilds these
        // artifacts — so a live cache never survives anything but graph
        // deltas, which `apply_delta` invalidates.
        let per_shard = if spec.cache_bytes == 0 {
            0
        } else {
            (spec.cache_bytes / k).max(LogitsCache::entry_bytes(model.config().out_dim))
        };
        let logits = (0..k).map(|_| LogitsCache::new(per_shard)).collect();

        Self {
            key: spec.key(),
            dataset,
            model,
            packed_model,
            packed_features,
            graph,
            adjacency,
            raw_features,
            bits,
            tiers,
            partitioning,
            shards,
            logits,
            policy: spec.policy.clone(),
            weight_bits: spec.weight_bits,
            input_follows_degree,
            version: 0,
        }
    }

    /// Applies a graph delta incrementally: mutate the live topology,
    /// refresh only the dirtied adjacency rows, and re-tier / re-quantize
    /// only the nodes whose in-degree moved across a policy boundary.
    ///
    /// `node_features` provides one raw feature row per `AddNode` op. A
    /// rejected delta (`Err`) changes nothing.
    pub fn apply_delta(
        &mut self,
        delta: &GraphDelta,
        node_features: &[Vec<f32>],
    ) -> Result<UpdateEffect, String> {
        // Non-finite feature payloads are rejected at the HTTP ingress;
        // anything that reaches this point through another path is a
        // caller bug (quantization would silently map NaN to level 0 and
        // poison every receptive field the row joins).
        debug_assert!(
            node_features
                .iter()
                .all(|row| row.iter().all(|x| x.is_finite())),
            "apply_delta received non-finite feature values"
        );
        let dim = self.packed_features.dim();
        if node_features.len() != delta.nodes_added() {
            return Err(format!(
                "delta adds {} node(s) but {} feature row(s) were provided",
                delta.nodes_added(),
                node_features.len()
            ));
        }
        if let Some(row) = node_features.iter().find(|r| r.len() != dim) {
            return Err(format!(
                "feature row has {} value(s), model expects {dim}",
                row.len()
            ));
        }
        let effect = self.graph.apply(delta).map_err(|e| e.to_string())?;

        // Grow per-node state for added nodes. Quantized rows and
        // bits/tiers are finalized in the re-tier pass below (an added
        // node may also have gained edges inside the same delta).
        for (i, &v) in effect.added_nodes.iter().enumerate() {
            debug_assert_eq!(v as usize, self.bits.len());
            match &mut self.raw_features {
                RawFeatures::Resident(f) => f.push_row(&node_features[i]),
                // The synthesizer only covers original nodes; added rows
                // go to the overlay so later re-tiers can re-read them.
                RawFeatures::Synth { overlay, .. } => {
                    overlay.insert(v, node_features[i].clone());
                }
                // 1-bit inputs never re-quantize: the payload row is
                // consumed by the re-tier pass below and then dropped.
                RawFeatures::Discarded => {}
            }
            self.bits.push(0);
            self.tiers.push(usize::MAX);
            // Placeholder packed row keeps ids aligned; the re-tier pass
            // below rewrites it at the node's final bitwidth.
            self.packed_features.push_empty(1);
            // Shard-aware placement: the least-loaded shard among the
            // neighbors' shards keeps the new node's receptive field local
            // without piling growth onto one shard; an unconnected node
            // falls back to the globally least-loaded shard.
            let assigned = |u: &&NodeId| (**u as usize) < v as usize;
            let neighbor_parts: Vec<u32> = self
                .graph
                .in_neighbors(v as usize)
                .iter()
                .filter(assigned)
                .chain(self.graph.out_neighbors(v as usize).iter().filter(assigned))
                .map(|&u| self.partitioning.part_of(u as usize))
                .collect();
            self.partitioning.push_balanced(&neighbor_parts);
        }

        let adjacency_dirty = self.adjacency.apply_dirty(&self.graph, &effect);
        let dirty_rows = adjacency_dirty.len();

        // Re-tier every node whose in-degree changed, plus the added nodes.
        // `feature_dirty` collects the nodes whose *quantized feature row*
        // was rewritten — shards holding them as halo copies must re-fetch.
        let mut retiered = Vec::new();
        let mut feature_dirty: Vec<NodeId> = Vec::new();
        let mut scratch = vec![0.0f32; dim];
        let added_start = self.num_nodes() - effect.added_nodes.len();
        for &v in effect.rows_changed.iter().chain(&effect.added_nodes) {
            let vu = v as usize;
            let new_tier = self.policy.tier_of_degree(self.graph.in_degree(vu));
            let new_bits = self.policy.tier_bits(new_tier);
            let is_new = vu >= added_start;
            let tier_changed = self.tiers[vu] != new_tier;
            if !is_new && !tier_changed {
                continue;
            }
            if !is_new {
                retiered.push(Retier {
                    node: v,
                    old_tier: self.tiers[vu],
                    new_tier,
                    old_bits: self.bits[vu],
                    new_bits,
                });
            }
            self.tiers[vu] = new_tier;
            self.bits[vu] = new_bits;
            // Only degree-following inputs change representation with the
            // tier; bag-of-words inputs stay at 1 bit.
            let input_bits = if self.input_follows_degree {
                new_bits
            } else {
                1
            };
            if is_new || self.input_follows_degree {
                if is_new {
                    // The freshest raw copy is the delta payload itself
                    // (for `Discarded` sources it is the *only* copy).
                    scratch.copy_from_slice(&node_features[vu - added_start]);
                } else {
                    // `!is_new` here implies degree-following inputs,
                    // which always retain a raw source (`Resident` or
                    // `Synth`) — `Discarded` pairs with 1-bit inputs.
                    let resolved = self.raw_row_into(vu, &mut scratch);
                    debug_assert!(resolved, "re-tier without a raw feature source");
                }
                let mut levels = Vec::with_capacity(dim);
                let alpha = quantize_row_with_levels(&mut scratch, input_bits, &mut levels);
                self.packed_features.set_row(vu, &levels, input_bits, alpha);
                feature_dirty.push(v);
            }
        }
        // Added nodes untouched by any edge op still need their tier
        // finalized (degree 0) — handled above via the chained iterator,
        // but an added node may appear in `rows_changed` too; the `is_new`
        // branch is idempotent so double-processing is harmless.

        // Result-cache invalidation seeds: every per-node input the
        // forward pass reads that this delta changed — normalized
        // adjacency rows (values or in-neighbor sets), rewritten quantized
        // feature rows, and re-tiered nodes (their hidden activations
        // re-quantize at the new bitwidth even when the stored feature row
        // did not change, e.g. 1-bit bag-of-words inputs).
        let mut cache_seeds: Vec<NodeId> = adjacency_dirty.clone();
        cache_seeds.extend_from_slice(&feature_dirty);
        cache_seeds.extend(retiered.iter().map(|r| r.node));
        cache_seeds.sort_unstable();
        cache_seeds.dedup();

        let shard_refreshes = self.exchange_halos(
            &effect.added_nodes,
            &effect.rows_changed,
            &adjacency_dirty,
            feature_dirty,
        );

        // Drop exactly the cached logits this delta can have affected: the
        // targets whose L-hop receptive field intersects a seed row, i.e.
        // the inverse halo closure of the seeds. Every surviving entry is
        // provably still bit-exact with a fresh pass.
        let stale = self.invalidation_closure(&cache_seeds);
        let mut logits_invalidated = Vec::new();
        for (shard, cache) in self.logits.iter().enumerate() {
            let dropped = cache.invalidate(&stale);
            if dropped > 0 {
                logits_invalidated.push((shard as u32, dropped));
            }
        }

        self.version += 1;
        Ok(UpdateEffect {
            inserted_edges: effect.inserted,
            removed_edges: effect.removed,
            added_nodes: effect.added_nodes,
            retiered,
            dirty_rows,
            shard_refreshes,
            logits_invalidated,
            balance: self.partitioning.balance(),
        })
    }

    /// The halo-exchange step: routes every dirtied row to the shards that
    /// replicate it. Untouched shards keep serving their hot slices
    /// without any synchronization beyond the entry lock; touched shards
    /// take one of two paths:
    ///
    /// * **Rebuild** (`O(shard)`) when membership may have moved — the
    ///   delta added a node this shard now owns, or changed the
    ///   in-neighbor *set* of a resident node (`rows_changed`); the L-hop
    ///   closure is re-extracted and exactly the new/stale halo copies are
    ///   charged as fetches.
    /// * **In-place refresh** (`O(dirty)`) when only row *values* moved —
    ///   GCN renormalization dirt on neighbor rows, or re-tiered feature
    ///   rows; membership is a function of in-neighbor sets, so the
    ///   resident rows are re-sliced/re-copied without re-extraction.
    fn exchange_halos(
        &mut self,
        added_nodes: &[NodeId],
        rows_changed: &[NodeId],
        adjacency_dirty: &[NodeId],
        feature_dirty: Vec<NodeId>,
    ) -> Vec<ShardRefresh> {
        let mut dirty: Vec<NodeId> = adjacency_dirty.to_vec();
        dirty.extend_from_slice(&feature_dirty);
        dirty.sort_unstable();
        dirty.dedup();
        if dirty.is_empty() && added_nodes.is_empty() {
            return Vec::new();
        }
        let hops = self.model.config().layers;
        let mut refreshes = Vec::new();
        for shard in &mut self.shards {
            let gained_node = added_nodes
                .iter()
                .any(|&v| self.partitioning.part_of(v as usize) == shard.part);
            let membership_dirty = gained_node || rows_changed.iter().any(|&v| shard.contains(v));
            if membership_dirty {
                refreshes.push(shard.rebuild(
                    &self.partitioning,
                    &self.graph,
                    &self.adjacency,
                    &self.packed_features,
                    hops,
                    &dirty,
                ));
            } else if dirty.iter().any(|&v| shard.contains(v)) {
                refreshes.push(shard.refresh_rows(
                    &self.adjacency,
                    &self.packed_features,
                    adjacency_dirty,
                    &feature_dirty,
                ));
            }
        }
        refreshes
    }

    /// The shard owning `node` (its partition).
    pub fn shard_of(&self, node: NodeId) -> u32 {
        self.partitioning.part_of(node as usize)
    }

    /// The resident state of shard `part`, if it exists.
    pub fn shard(&self, part: u32) -> Option<&ShardState> {
        self.shards.get(part as usize)
    }

    /// The logits cache of shard `part`, if it exists.
    pub fn logits_cache(&self, part: u32) -> Option<&LogitsCache> {
        self.logits.get(part as usize)
    }

    /// The set of targets whose cached logits a mutation of `dirty` rows
    /// can have affected: every node within `L` out-edge hops of a dirty
    /// row (`L` = model layers), including the dirty rows themselves —
    /// the inverse of the halo closure that builds shard slices
    /// ([`mega_partition::influence_closure_with`]). A target outside this
    /// set has an `L`-hop receptive field disjoint from every dirty row,
    /// so its logits are a function of unchanged inputs only; the
    /// logits-cache proptests cross-check this against
    /// [`mega_gnn::ReceptiveField::intersects`] directly.
    pub fn invalidation_closure(&self, dirty: &[NodeId]) -> Vec<NodeId> {
        influence_closure_with(dirty, self.num_nodes(), self.model.config().layers, |v| {
            self.graph.out_neighbors(v)
        })
    }

    /// Drops every cached logits row of every shard (the explicit
    /// operator knob; deltas invalidate precisely instead). Returns the
    /// number of entries dropped.
    pub fn flush_logits(&self) -> usize {
        self.logits.iter().map(LogitsCache::flush).sum()
    }

    /// Number of nodes this model currently serves (live topology).
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Input feature dimensionality this model serves.
    pub fn feature_dim(&self) -> usize {
        self.packed_features.dim()
    }

    /// Writes node `v`'s raw (unquantized) feature row into `out`,
    /// resolving through [`RawFeatures`]: the resident matrix, the
    /// delta-row overlay, or on-demand synthesis. Returns `false` when no
    /// raw source exists (`Discarded`), leaving `out` untouched.
    pub fn raw_row_into(&self, v: usize, out: &mut [f32]) -> bool {
        match &self.raw_features {
            RawFeatures::Resident(f) => {
                out.copy_from_slice(f.row(v));
                true
            }
            RawFeatures::Synth { synth, overlay } => {
                if let Some(row) = overlay.get(&(v as NodeId)) {
                    out.copy_from_slice(row);
                } else {
                    synth.fill_row(v as u64, self.dataset.labels[v], out);
                }
                true
            }
            RawFeatures::Discarded => false,
        }
    }

    /// Approximate heap bytes these artifacts hold resident, split by
    /// component (the structures that dominate a model's footprint:
    /// feature matrices, the incremental adjacency, shard slices, logits
    /// caches). Model weights and per-node policy vectors are small by
    /// comparison and not itemized. Feeds `/metrics`' per-model gauges.
    pub fn resident_bytes(&self) -> crate::trace::ModelMemory {
        crate::trace::ModelMemory {
            model: self.key.clone(),
            nodes: self.num_nodes(),
            feature_dim: self.feature_dim(),
            shard_resident_rows: self.shards.iter().map(ShardState::num_locals).sum(),
            features_bytes: self.packed_features.resident_bytes(),
            raw_features_bytes: self.raw_features.resident_bytes(),
            adjacency_bytes: self.adjacency.approx_heap_bytes(),
            shard_bytes: self.shards.iter().map(ShardState::resident_bytes).sum(),
            logits_bytes: self.logits.iter().map(LogitsCache::bytes).sum(),
        }
    }

    /// The activation bitwidth served to `node`.
    pub fn node_bits(&self, node: NodeId) -> u8 {
        self.bits[node as usize]
    }

    /// The precision tier of `node`.
    pub fn node_tier(&self, node: NodeId) -> usize {
        self.tiers[node as usize]
    }
}

/// A resident cache entry: the artifacts behind a readers/writer lock.
/// Batches take read guards; updates take the write guard, so execution
/// never sees a half-applied mutation.
pub struct ModelEntry {
    artifacts: RwLock<ModelArtifacts>,
}

impl ModelEntry {
    fn new(artifacts: ModelArtifacts) -> Self {
        Self {
            artifacts: RwLock::new(artifacts),
        }
    }

    /// Read access for batch execution and probes.
    pub fn read(&self) -> RwLockReadGuard<'_, ModelArtifacts> {
        self.artifacts.read().recover("model-artifacts")
    }

    /// Runs `f` with exclusive access (the update path).
    pub fn update<R>(&self, f: impl FnOnce(&mut ModelArtifacts) -> R) -> R {
        f(&mut self.artifacts.write().recover("model-artifacts"))
    }

    /// Whether this entry has applied mutations. Mutated state exists
    /// *only* here — rebuilding from the registry spec would silently
    /// revert acknowledged updates — so dirty entries are pinned against
    /// LRU eviction. Contended entries (an update mid-flight) count as
    /// dirty rather than blocking the cache lock.
    fn is_dirty(&self) -> bool {
        match self.artifacts.try_read() {
            Ok(artifacts) => artifacts.version > 0,
            Err(_) => true,
        }
    }
}

struct Slot {
    entry: Arc<OnceLock<Arc<ModelEntry>>>,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<ModelKey, Slot>,
    tick: u64,
}

/// LRU cache of [`ModelEntry`]s keyed by [`ModelKey`].
pub struct ArtifactCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ArtifactCache {
    /// A cache holding `capacity` artifact sets. Mutated (dirty) entries
    /// are pinned against eviction, so a cache whose every entry carries
    /// applied updates temporarily exceeds `capacity` rather than drop
    /// un-reconstructible state.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the entry for `key`, building it with `build` on a miss.
    /// Concurrent first accesses to the same key build once; builds for
    /// *different* keys proceed in parallel (the map lock is not held
    /// while building).
    pub fn get_or_build(
        &self,
        key: &ModelKey,
        build: impl FnOnce() -> ModelArtifacts,
    ) -> Arc<ModelEntry> {
        let entry = {
            let mut inner = self.inner.lock().recover("artifact-cache");
            inner.tick += 1;
            let tick = inner.tick;
            if let Some(slot) = inner.map.get_mut(key) {
                slot.last_used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                slot.entry.clone()
            } else {
                self.misses.fetch_add(1, Ordering::Relaxed);
                // Evict the least-recently-used *clean* entry. Entries
                // with applied mutations (or still building / mid-update)
                // are pinned — their state exists nowhere else, so
                // evicting them would silently revert acknowledged
                // updates. With every entry dirty the cache soft-exceeds
                // its capacity instead.
                if inner.map.len() >= self.capacity {
                    if let Some(lru) = inner
                        .map
                        .iter()
                        .filter(|(_, slot)| slot.entry.get().is_some_and(|entry| !entry.is_dirty()))
                        .min_by_key(|(_, slot)| slot.last_used)
                        .map(|(k, _)| k.clone())
                    {
                        inner.map.remove(&lru);
                    }
                }
                let entry = Arc::new(OnceLock::new());
                inner.map.insert(
                    key.clone(),
                    Slot {
                        entry: entry.clone(),
                        last_used: tick,
                    },
                );
                entry
            }
        };
        entry
            .get_or_init(|| Arc::new(ModelEntry::new(build())))
            .clone()
    }

    /// Drops `key`'s entry so the next access rebuilds from the registry
    /// spec (e.g. after a re-registration). Entries for other keys are
    /// untouched — [`ArtifactCache::get_or_build`] rebuilds only
    /// invalidated (dirty) entries. Returns whether an entry was resident.
    ///
    /// Unlike LRU eviction this removes *mutated* entries too: it is the
    /// explicit "discard applied updates and restart from the spec" knob.
    /// In-flight readers holding the old `Arc` finish against the old
    /// artifacts; new lookups see the rebuild.
    pub fn invalidate(&self, key: &ModelKey) -> bool {
        self.inner
            .lock()
            .recover("artifact-cache")
            .map
            .remove(key)
            .is_some()
    }

    /// Whether `key` is resident (does not touch LRU order or counters).
    pub fn contains(&self, key: &ModelKey) -> bool {
        self.inner
            .lock()
            .recover("artifact-cache")
            .map
            .contains_key(key)
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().recover("artifact-cache").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every fully built resident entry, with its key. Entries still
    /// mid-build (their `OnceLock` unset) are skipped — memory telemetry
    /// samples what exists now rather than waiting on a build. Does not
    /// touch LRU order or hit/miss counters.
    pub fn resident(&self) -> Vec<(ModelKey, Arc<ModelEntry>)> {
        self.inner
            .lock()
            .recover("artifact-cache")
            .map
            .iter()
            .filter_map(|(key, slot)| slot.entry.get().map(|e| (key.clone(), e.clone())))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::{build_adjacency, AdjacencyView, GnnKind};
    use mega_graph::DatasetSpec;

    fn tiny_spec(name_seed: u64) -> ModelSpec {
        let mut dataset = DatasetSpec::cora().scaled(0.05).with_feature_dim(32);
        dataset.seed ^= name_seed;
        dataset.name = format!("Tiny{name_seed}");
        ModelSpec::standard(dataset, GnnKind::Gcn)
    }

    #[test]
    fn artifacts_expose_consistent_per_node_metadata() {
        let spec = tiny_spec(0);
        let a = ModelArtifacts::build(&spec);
        assert_eq!(a.bits.len(), a.num_nodes());
        assert_eq!(a.tiers.len(), a.num_nodes());
        for v in 0..a.num_nodes() as NodeId {
            assert_eq!(a.policy.tier_bits(a.node_tier(v)), a.node_bits(v));
        }
        assert_eq!(AdjacencyView::rows(&a.adjacency), a.num_nodes());
        assert_eq!(a.partitioning.assignment().len(), a.num_nodes());
        assert_eq!(a.packed_features.len(), a.num_nodes());
        // Tiny cora is binary bag-of-words (1-bit inputs): no raw rows
        // are retained, and the dense matrix is gone after packing.
        assert!(matches!(a.raw_features, RawFeatures::Discarded));
        assert!(a.dataset.features.is_none());
        assert_eq!(a.version, 0);
    }

    #[test]
    fn built_adjacency_matches_one_shot_construction() {
        let spec = tiny_spec(0);
        let a = ModelArtifacts::build(&spec);
        let reference =
            build_adjacency(&a.graph.to_graph(), spec.kind.aggregator(spec.dataset.seed));
        assert_eq!(a.adjacency.to_csr(), *reference);
    }

    #[test]
    fn quantize_row_is_idempotent_and_bounded() {
        let mut row = vec![0.5f32, -1.5, 0.0, 3.2];
        quantize_row(&mut row, 4);
        let once = row.clone();
        quantize_row(&mut row, 4);
        // Levels stay on the same grid after requantization.
        for (a, b) in once.iter().zip(&row) {
            assert!((a - b).abs() < 1e-6);
        }
        assert_eq!(row[2], 0.0);
        let mut zeros = vec![0.0f32; 4];
        quantize_row(&mut zeros, 2);
        assert!(zeros.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn apply_delta_retiers_across_boundaries() {
        let spec = tiny_spec(0);
        let mut a = ModelArtifacts::build(&spec);
        // Find a node in the lowest tier and a batch of distinct sources.
        let target = (0..a.num_nodes() as NodeId)
            .find(|&v| a.node_tier(v) == 0)
            .expect("tiny cora has low-degree nodes");
        let before_bits = a.node_bits(target);
        let mut delta = GraphDelta::new();
        let mut added = 0;
        for src in 0..a.num_nodes() as NodeId {
            if src != target && !a.graph.has_edge(src, target) {
                delta.insert_edge(src, target);
                added += 1;
                if added == 40 {
                    break;
                }
            }
        }
        assert!(added >= 33, "need enough sources to cross tier 3");
        let effect = a.apply_delta(&delta, &[]).unwrap();
        assert_eq!(effect.inserted_edges, added);
        let promotion = effect
            .retiered
            .iter()
            .find(|r| r.node == target)
            .expect("target must retier");
        assert_eq!(promotion.old_bits, before_bits);
        assert!(promotion.new_bits > before_bits);
        assert_eq!(a.node_bits(target), promotion.new_bits);
        assert_eq!(
            a.node_bits(target),
            a.policy.bits_for_degree(a.graph.in_degree(target as usize))
        );
        assert_eq!(a.version, 1);
        // Incremental adjacency equals a from-scratch rebuild of the
        // mutated graph.
        let rebuilt = build_adjacency(&a.graph.to_graph(), spec.kind.aggregator(spec.dataset.seed));
        assert_eq!(a.adjacency.to_csr(), *rebuilt);
    }

    #[test]
    fn apply_delta_rejects_bad_feature_payloads() {
        let spec = tiny_spec(0);
        let mut a = ModelArtifacts::build(&spec);
        let before_nodes = a.num_nodes();
        let mut delta = GraphDelta::new();
        delta.add_node();
        assert!(a.apply_delta(&delta, &[]).unwrap_err().contains("feature"));
        assert!(a
            .apply_delta(&delta, &[vec![0.0; 3]])
            .unwrap_err()
            .contains("expects"));
        let mut bad_edge = GraphDelta::new();
        bad_edge.insert_edge(0, u32::MAX);
        assert!(a
            .apply_delta(&bad_edge, &[])
            .unwrap_err()
            .contains("out of range"));
        assert_eq!(
            a.num_nodes(),
            before_nodes,
            "rejected deltas change nothing"
        );
        assert_eq!(a.version, 0);
    }

    #[test]
    fn apply_delta_grows_every_per_node_table() {
        let spec = tiny_spec(0);
        let mut a = ModelArtifacts::build(&spec);
        let n0 = a.num_nodes();
        let dim = a.feature_dim();
        let mut delta = GraphDelta::new();
        delta.add_node().insert_edge(0, n0 as NodeId);
        let effect = a.apply_delta(&delta, &[vec![0.25; dim]]).unwrap();
        assert_eq!(effect.added_nodes, vec![n0 as NodeId]);
        assert_eq!(a.num_nodes(), n0 + 1);
        assert_eq!(a.bits.len(), n0 + 1);
        assert_eq!(a.tiers.len(), n0 + 1);
        assert_eq!(a.packed_features.len(), n0 + 1);
        assert_eq!(a.partitioning.assignment().len(), n0 + 1);
        assert_eq!(AdjacencyView::rows(&a.adjacency), n0 + 1);
        assert_eq!(a.node_tier(n0 as NodeId), 0, "one in-edge is tier 0");
    }

    #[test]
    fn synth_specs_serve_without_resident_f32_rows() {
        let spec = ModelSpec::standard(DatasetSpec::synth(500), GnnKind::Gcn);
        let mut a = ModelArtifacts::build(&spec);
        assert!(matches!(a.raw_features, RawFeatures::Synth { .. }));
        assert!(a.dataset.features.is_none(), "no dense matrix resident");
        assert_eq!(a.packed_features.len(), a.num_nodes());
        let dim = a.feature_dim();
        assert_eq!(dim, 64);

        // Original rows regenerate on demand (what re-tiering reads).
        let mut row = vec![0.0f32; dim];
        assert!(a.raw_row_into(7, &mut row));
        assert!(row.iter().any(|&x| x != 0.0), "dense synth row is nonzero");
        let mut again = vec![0.0f32; dim];
        assert!(a.raw_row_into(7, &mut again));
        assert_eq!(row, again, "synthesis is deterministic");

        // A delta-added node lands in the overlay and reads back verbatim.
        let n0 = a.num_nodes();
        let mut delta = GraphDelta::new();
        delta.add_node().insert_edge(0, n0 as NodeId);
        a.apply_delta(&delta, &[vec![0.5; dim]]).unwrap();
        assert!(a.raw_row_into(n0, &mut row));
        assert_eq!(row, vec![0.5; dim]);

        // The memory breakdown reflects the lean layout: no f32 matrix
        // anywhere, only class tables + the one overlay row.
        let memory = a.resident_bytes();
        assert_eq!(memory.nodes, n0 + 1);
        assert_eq!(memory.feature_dim, dim);
        assert!(memory.shard_resident_rows >= memory.nodes);
        let f32_matrix = memory.nodes * dim * std::mem::size_of::<f32>();
        assert!(
            memory.raw_features_bytes < f32_matrix / 4,
            "raw source bytes {} should be far below a resident matrix {}",
            memory.raw_features_bytes,
            f32_matrix
        );
    }

    #[test]
    fn tiny_nonzero_logits_budget_still_admits_one_entry_per_shard() {
        // A small model budget split across shards must not round below
        // one logits row — that would silently disable a cache the
        // operator turned on.
        let mut spec = tiny_spec(0);
        spec.cache_bytes = 10;
        let a = ModelArtifacts::build(&spec);
        let entry = LogitsCache::entry_bytes(a.model.config().out_dim);
        assert!(!a.logits.is_empty());
        for cache in &a.logits {
            assert!(cache.is_enabled());
            assert!(cache.capacity_bytes() >= entry);
        }
        // Zero stays zero: explicitly disabled.
        spec.cache_bytes = 0;
        let a = ModelArtifacts::build(&spec);
        assert!(a.logits.iter().all(|c| !c.is_enabled()));
    }

    #[test]
    fn cache_hits_misses_and_evicts() {
        let cache = ArtifactCache::new(2);
        let s0 = tiny_spec(0);
        let s1 = tiny_spec(1);
        let s2 = tiny_spec(2);
        let a0 = cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        let again = cache.get_or_build(&s0.key(), || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a0, &again));
        cache.get_or_build(&s1.key(), || ModelArtifacts::build(&s1));
        cache.get_or_build(&s2.key(), || ModelArtifacts::build(&s2)); // evicts s0
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats(), (1, 3));
        // s0 was evicted: fetching it again is a miss that rebuilds.
        cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        assert_eq!(cache.stats(), (1, 4));
    }

    #[test]
    fn eviction_follows_lru_order() {
        let cache = ArtifactCache::new(2);
        let specs: Vec<ModelSpec> = (0..3).map(tiny_spec).collect();
        cache.get_or_build(&specs[0].key(), || ModelArtifacts::build(&specs[0]));
        cache.get_or_build(&specs[1].key(), || ModelArtifacts::build(&specs[1]));
        // Touch 0 so 1 becomes least-recently-used.
        cache.get_or_build(&specs[0].key(), || panic!("resident"));
        cache.get_or_build(&specs[2].key(), || ModelArtifacts::build(&specs[2]));
        assert!(cache.contains(&specs[0].key()), "recently used survives");
        assert!(!cache.contains(&specs[1].key()), "LRU entry evicted");
        assert!(cache.contains(&specs[2].key()));
    }

    #[test]
    fn mutated_entries_are_pinned_against_eviction() {
        let cache = ArtifactCache::new(2);
        let specs: Vec<ModelSpec> = (0..3).map(tiny_spec).collect();
        let entry = cache.get_or_build(&specs[0].key(), || ModelArtifacts::build(&specs[0]));
        let mut delta = GraphDelta::new();
        delta.insert_edge(0, 1).remove_edge(0, 1);
        entry.update(|a| a.apply_delta(&delta, &[]).unwrap());
        cache.get_or_build(&specs[1].key(), || ModelArtifacts::build(&specs[1]));
        // Capacity pressure: the mutated entry 0 is older than 1 but must
        // survive; the clean LRU (1) goes instead.
        cache.get_or_build(&specs[2].key(), || ModelArtifacts::build(&specs[2]));
        assert!(cache.contains(&specs[0].key()), "dirty entry pinned");
        assert!(!cache.contains(&specs[1].key()), "clean LRU evicted");
        let same = cache.get_or_build(&specs[0].key(), || panic!("must not rebuild"));
        assert_eq!(same.read().version, 1, "applied updates survive pressure");

        // All-dirty caches soft-exceed capacity instead of losing state.
        let e2 = cache.get_or_build(&specs[2].key(), || panic!("resident"));
        e2.update(|a| a.apply_delta(&delta, &[]).unwrap());
        cache.get_or_build(&specs[1].key(), || ModelArtifacts::build(&specs[1]));
        assert_eq!(cache.len(), 3, "no clean entry to evict");
        // Explicit invalidation still removes mutated entries.
        assert!(cache.invalidate(&specs[0].key()));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn invalidation_rebuilds_only_dirty_entries() {
        let cache = ArtifactCache::new(4);
        let s0 = tiny_spec(0);
        let s1 = tiny_spec(1);
        cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        cache.get_or_build(&s1.key(), || ModelArtifacts::build(&s1));
        assert!(cache.invalidate(&s0.key()));
        assert!(!cache.invalidate(&s0.key()), "already gone");
        assert!(!cache.contains(&s0.key()));
        assert!(cache.contains(&s1.key()));
        let (h0, m0) = cache.stats();
        // The clean entry serves from cache; only the dirty one rebuilds.
        cache.get_or_build(&s1.key(), || panic!("clean entry must not rebuild"));
        cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        let (h1, m1) = cache.stats();
        assert_eq!(h1 - h0, 1, "clean entry hit");
        assert_eq!(m1 - m0, 1, "dirty entry missed and rebuilt");
    }

    #[test]
    fn entry_lock_serializes_updates_with_reads() {
        let cache = ArtifactCache::new(2);
        let s0 = tiny_spec(0);
        let entry = cache.get_or_build(&s0.key(), || ModelArtifacts::build(&s0));
        let v0 = entry.read().version;
        let mut delta = GraphDelta::new();
        delta.insert_edge(0, 1);
        let _ = entry.update(|a| a.apply_delta(&delta, &[]).unwrap());
        assert_eq!(entry.read().version, v0 + 1);
    }
}
