//! `mega-serve` — a batched, degree-aware mixed-precision inference
//! serving engine over the MEGA reproduction stack.
//!
//! The paper's observation (assign per-node bitwidths by in-degree so
//! memory traffic shrinks without accuracy loss) is exactly the knob an
//! online service wants: low-degree nodes — the overwhelming power-law
//! majority of traffic — are cheap at 2–3 bits, while rare hub nodes get
//! more bits *and* proportionally more compute. The engine turns that into
//! a serving architecture:
//!
//! ```text
//!  submit()──► degree-aware policy ──► BatchScheduler ──► mpsc ──► WorkerPool
//!              (tier = f(in-degree))   buckets by          │        (std threads)
//!                                      (model, tier);      │   sliced quantized
//!                                      flush on size       │   forward over the
//!                                      or deadline         │   batch's receptive
//!                                                          ▼   field
//!                    ArtifactCache (LRU): Dataset, quantized Gnn,
//!                    adjacency Ã, METIS-like partitioning, bit profile
//! ```
//!
//! * [`ModelRegistry`] holds [`ModelSpec`]s — recipes for everything a
//!   model needs (dataset, architecture, [`mega_quant::DegreePolicy`],
//!   weight bits, partition count).
//! * [`ArtifactCache`] LRU-shares the heavy immutable artifacts across
//!   workers and builds each at most once.
//! * [`BatchScheduler`] coalesces requests per (model, precision-tier)
//!   bucket and flushes on size or deadline.
//! * [`WorkerPool`] executes batches with
//!   [`mega_gnn::infer::forward_targets`], which touches only the batch's
//!   receptive field and is bit-exact regardless of batch composition.
//! * [`Metrics`] tracks throughput, latency percentiles (log histogram),
//!   per-bitwidth counts, and flush/cache behaviour.
//!
//! # Example
//!
//! ```
//! use mega_gnn::GnnKind;
//! use mega_graph::DatasetSpec;
//! use mega_serve::{ModelRegistry, ModelSpec, ServeConfig, ServeEngine};
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let key = registry.register(ModelSpec::standard(
//!     DatasetSpec::cora().scaled(0.05).with_feature_dim(32),
//!     GnnKind::Gcn,
//! ));
//! let config = ServeConfig { workers: 2, ..ServeConfig::default() };
//! let (engine, responses) = ServeEngine::start(config, registry);
//! for node in 0..16 {
//!     engine.submit(&key, node).expect("registered model");
//! }
//! let report = engine.shutdown();
//! assert_eq!(report.completed, 16);
//! assert_eq!(responses.iter().count(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod metrics;
pub mod registry;
pub mod request;
pub mod scheduler;
pub mod worker;

pub use cache::{ArtifactCache, ModelArtifacts};
pub use metrics::{LogHistogram, Metrics, MetricsReport};
pub use registry::{ModelRegistry, ModelSpec};
pub use request::{InferenceRequest, InferenceResponse, ModelKey};
pub use scheduler::{Batch, BatchScheduler, FlushReason, SchedulerConfig};
pub use worker::{batch_logits, WorkerPool};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mega_graph::NodeId;

/// Engine-level knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Batching policy.
    pub scheduler: SchedulerConfig,
    /// Artifact sets kept resident (LRU above this).
    pub cache_capacity: usize,
    /// How often the deadline sweeper wakes.
    pub sweep_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(4);
        Self {
            workers,
            scheduler: SchedulerConfig::default(),
            cache_capacity: 8,
            sweep_interval: Duration::from_micros(500),
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The model key is not in the registry.
    UnknownModel(ModelKey),
    /// The node id exceeds the model's graph.
    NodeOutOfRange {
        /// The requested node.
        node: NodeId,
        /// Number of nodes the model serves.
        nodes: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(key) => write!(f, "model {key} is not registered"),
            ServeError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (model has {nodes} nodes)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// The serving engine: scheduler + sweeper + worker pool + shared caches.
pub struct ServeEngine {
    registry: Arc<ModelRegistry>,
    cache: Arc<ArtifactCache>,
    scheduler: Arc<BatchScheduler>,
    metrics: Arc<Metrics>,
    pool: WorkerPool,
    sweeper: std::thread::JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
    next_id: AtomicU64,
    started_at: Instant,
}

impl ServeEngine {
    /// Starts workers and the deadline sweeper; returns the engine plus the
    /// response stream. The stream ends when the engine shuts down.
    pub fn start(
        config: ServeConfig,
        registry: Arc<ModelRegistry>,
    ) -> (Self, Receiver<InferenceResponse>) {
        let (batch_tx, batch_rx) = mpsc::channel();
        let (response_tx, response_rx) = mpsc::channel();
        let cache = Arc::new(ArtifactCache::new(config.cache_capacity));
        let metrics = Arc::new(Metrics::default());
        let scheduler = Arc::new(BatchScheduler::new(config.scheduler.clone(), batch_tx));
        let pool = WorkerPool::spawn(
            config.workers,
            batch_rx,
            registry.clone(),
            cache.clone(),
            metrics.clone(),
            response_tx,
        );
        let shutdown = Arc::new(AtomicBool::new(false));
        let sweeper = {
            let scheduler = scheduler.clone();
            let shutdown = shutdown.clone();
            let interval = config.sweep_interval;
            std::thread::Builder::new()
                .name("mega-serve-sweeper".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Relaxed) {
                        scheduler.poll_deadlines(Instant::now());
                        std::thread::sleep(interval);
                    }
                })
                .expect("spawn sweeper thread")
        };
        let engine = Self {
            registry,
            cache,
            scheduler,
            metrics,
            pool,
            sweeper,
            shutdown,
            next_id: AtomicU64::new(0),
            started_at: Instant::now(),
        };
        (engine, response_rx)
    }

    /// Pre-builds (or touches) the artifacts for `key`, so the first
    /// requests do not pay the build latency.
    pub fn warm(&self, key: &ModelKey) -> Result<(), ServeError> {
        let spec = self
            .registry
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.clone()))?;
        self.cache
            .get_or_build(key, || ModelArtifacts::build(&spec));
        Ok(())
    }

    /// Accepts one node-classification request. Returns the engine-assigned
    /// request id; the response arrives on the stream returned by
    /// [`ServeEngine::start`].
    pub fn submit(&self, key: &ModelKey, node: NodeId) -> Result<u64, ServeError> {
        let spec = self
            .registry
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.clone()))?;
        let artifacts = self
            .cache
            .get_or_build(key, || ModelArtifacts::build(&spec));
        if node as usize >= artifacts.num_nodes() {
            return Err(ServeError::NodeOutOfRange {
                node,
                nodes: artifacts.num_nodes(),
            });
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let request = InferenceRequest {
            id,
            model: key.clone(),
            node,
            tier: artifacts.node_tier(node),
            bits: artifacts.node_bits(node),
            submitted_at: Instant::now(),
        };
        self.scheduler.submit(request);
        Ok(id)
    }

    /// Requests waiting in scheduler buckets (not yet dispatched).
    pub fn pending(&self) -> usize {
        self.scheduler.pending()
    }

    /// The live metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Point-in-time report including cache behaviour.
    pub fn report(&self) -> MetricsReport {
        let (hits, misses) = self.cache.stats();
        self.metrics.report(self.started_at.elapsed(), hits, misses)
    }

    /// Drains every pending request, stops all threads, and returns the
    /// final report. Blocks until every submitted request was answered.
    pub fn shutdown(self) -> MetricsReport {
        let Self {
            cache,
            scheduler,
            metrics,
            pool,
            sweeper,
            shutdown,
            started_at,
            ..
        } = self;
        shutdown.store(true, Ordering::Relaxed);
        sweeper.join().expect("sweeper thread panicked");
        scheduler.flush_all();
        // Dropping the scheduler drops the batch sender; workers drain the
        // queue and exit.
        drop(scheduler);
        pool.join();
        let (hits, misses) = cache.stats();
        metrics.report(started_at.elapsed(), hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::GnnKind;
    use mega_graph::DatasetSpec;

    fn tiny_registry() -> (Arc<ModelRegistry>, ModelKey) {
        let registry = Arc::new(ModelRegistry::new());
        let key = registry.register(ModelSpec::standard(
            DatasetSpec::cora().scaled(0.05).with_feature_dim(32),
            GnnKind::Gcn,
        ));
        (registry, key)
    }

    #[test]
    fn rejects_unknown_model_and_bad_node() {
        let (registry, key) = tiny_registry();
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (engine, _responses) = ServeEngine::start(config, registry);
        let missing = ModelKey::new("Nope", GnnKind::Gcn);
        assert_eq!(
            engine.submit(&missing, 0),
            Err(ServeError::UnknownModel(missing.clone()))
        );
        assert!(engine.warm(&missing).is_err());
        let err = engine.submit(&key, 1_000_000).unwrap_err();
        assert!(matches!(err, ServeError::NodeOutOfRange { .. }));
        let report = engine.shutdown();
        assert_eq!(report.submitted, 0);
    }

    #[test]
    fn serves_every_submitted_request_exactly_once() {
        let (registry, key) = tiny_registry();
        let config = ServeConfig {
            workers: 4,
            scheduler: SchedulerConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            },
            ..ServeConfig::default()
        };
        let (engine, responses) = ServeEngine::start(config, registry);
        engine.warm(&key).unwrap();
        let n = 100;
        let mut ids = std::collections::HashSet::new();
        for i in 0..n {
            ids.insert(engine.submit(&key, (i % 50) as NodeId).unwrap());
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, n as u64);
        assert_eq!(report.submitted, n as u64);
        let mut answered = std::collections::HashSet::new();
        for response in responses.iter() {
            assert!(answered.insert(response.id), "duplicate response");
            assert!(ids.contains(&response.id));
            assert!(!response.logits.is_empty());
            assert!(response.batch_size >= 1);
        }
        assert_eq!(answered.len(), n as usize);
        assert!(report.cache_hit_rate > 0.9, "warm cache expected");
        assert!(report.batches > 0 && report.avg_batch >= 1.0);
    }
}
