//! `mega-serve` — a batched, degree-aware mixed-precision inference
//! serving engine over the MEGA reproduction stack.
//!
//! The paper's observation (assign per-node bitwidths by in-degree so
//! memory traffic shrinks without accuracy loss) is exactly the knob an
//! online service wants: low-degree nodes — the overwhelming power-law
//! majority of traffic — are cheap at 2–3 bits, while rare hub nodes get
//! more bits *and* proportionally more compute. The engine turns that into
//! a serving architecture:
//!
//! ```text
//!  submit()──► degree-aware policy ──► LogitsCache ──► BatchScheduler ──► WorkRouter ──► WorkerPool
//!              shard = owner(node)     per (model,      buckets by          (model,       one lane per
//!              tier  = f(in-degree)    shard); HIT      (model, shard,       shard) ──►   worker; a shard's
//!                                      answers here,    tier); flush on      lane hash    batches always hit
//!                                      MISS falls       size or deadline                  the same thread
//!                                      through                                   │
//!                    ArtifactCache (LRU): quantized Gnn, live                    ▼  split late hits from
//!                    DynamicGraph + Ã, K-way partitioning,                   misses; forward misses over
//!                    per-shard slices (local adjacency + owned               the shard-local slice; fill
//!                    rows + L-hop halo feature copies), and                  the logits cache on the way
//!                    per-shard byte-budgeted logits caches                   out
//! ```
//!
//! * [`ModelRegistry`] holds [`ModelSpec`]s — recipes for everything a
//!   model needs (dataset, architecture, [`mega_quant::DegreePolicy`],
//!   weight bits, shard count).
//! * [`ArtifactCache`] LRU-shares the heavy artifacts across workers and
//!   builds each at most once; entries sit behind a readers/writer lock so
//!   graph mutations serialize against batch execution.
//! * [`BatchScheduler`] coalesces requests per (model, shard,
//!   precision-tier) bucket and flushes on size or deadline.
//! * [`WorkerPool`] is *shard-affine*: [`WorkRouter`] pins every
//!   `(model, shard)` to one worker lane, and the worker executes batches
//!   with [`mega_gnn::forward_targets_local`] over the shard's own
//!   adjacency/feature slice ([`ShardState`]) — bit-exact with the global
//!   pass regardless of batch composition or shard count.
//! * [`LogitsCache`] (one per `(model, shard)`) short-circuits the whole
//!   pipeline for hot nodes: a byte-budgeted LRU over final logits rows,
//!   consulted at submit time and again per batch, kept bit-exact under
//!   mutation by delta-precise invalidation (the inverse halo closure of
//!   each delta's dirty rows).
//! * [`Metrics`] tracks throughput, latency percentiles (log histogram),
//!   per-bitwidth counts, flush/cache behaviour, per-shard halo traffic,
//!   logits-cache hits/misses/evictions/invalidations, and an analytic
//!   MEGA hardware estimate (cycles / DRAM bytes) per shard-batch.
//!
//! Cross-shard receptive fields are *halo-exchanged* rather than read from
//! global state: each shard replicates the L-hop in-neighborhood of its
//! owned nodes ([`mega_partition::ShardSpec`]), and a graph delta routes
//! every dirtied row to the shards replicating it, re-fetching exactly the
//! stale halo copies (counted in [`Metrics`] and [`UpdateResponse`]).
//!
//! Graphs are *mutable while serving*: [`ServeEngine::submit_update`]
//! routes a [`mega_graph::GraphDelta`] (edge upserts/removals, node
//! adds/isolations) through the same scheduler→worker path as inference.
//! The worker applies it incrementally — [`mega_graph::DynamicGraph`]
//! mutation, [`mega_gnn::DynAdjacency`] row refresh for only the dirtied
//! rows, and degree re-tiering that re-quantizes only the nodes whose
//! in-degree crossed a policy boundary — so a node's served bitwidth
//! tracks its live degree (a promoted hub is answered at more bits on the
//! very next batch).
//!
//! Completion is **event-driven**, not polled: every submit registers a
//! [`Ticket`] with the engine's completion router, and whichever thread
//! produces the response (the submit-time cache-hit path or a worker)
//! delivers it into the ticket's slot — waking its waiter that instant —
//! as well as onto the legacy broadcast stream. [`ServeEngine::submit_wait`]
//! and [`ServeEngine::submit_update_wait`] wrap that into blocking
//! request/response calls with per-request deadlines, and the deadline
//! sweeper parks on a condvar until exactly the earliest bucket deadline
//! instead of sleep-polling. A std-only TCP/HTTP ingress ([`http`])
//! exposes the same calls over the wire with admission-control
//! backpressure.
//!
//! # Example
//!
//! ```
//! use mega_gnn::GnnKind;
//! use mega_graph::DatasetSpec;
//! use mega_serve::{ModelRegistry, ModelSpec, ServeConfig, ServeEngine};
//! use std::sync::Arc;
//! use std::time::Duration;
//!
//! let registry = Arc::new(ModelRegistry::new());
//! let key = registry.register(ModelSpec::standard(
//!     DatasetSpec::cora().scaled(0.05).with_feature_dim(32),
//!     GnnKind::Gcn,
//! ));
//! let config = ServeConfig { workers: 2, ..ServeConfig::default() };
//! let (engine, responses) = ServeEngine::start(config, registry);
//! let timeout = Duration::from_secs(30);
//! // Request/response semantics: wait on the ticket...
//! let ticket = engine.submit(&key, 0).expect("registered model");
//! let answer = ticket.wait_inference(timeout).expect("answered");
//! assert_eq!(answer.node, 0);
//! // ...or in one call.
//! let direct = engine.submit_wait(&key, 1, timeout).expect("answered");
//! assert!(!direct.logits.is_empty());
//! // Mutate the graph while serving: wire node 3 into node 0.
//! let mut delta = mega_graph::GraphDelta::new();
//! delta.insert_edge(3, 0);
//! let ack = engine
//!     .submit_update_wait(&key, delta, vec![], timeout)
//!     .expect("applied");
//! assert!(ack.applied());
//! let report = engine.shutdown();
//! assert_eq!(report.completed, 2);
//! // Every response also rode the legacy stream.
//! assert_eq!(responses.iter().count(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod logits;
pub mod metrics;
pub mod poison;
pub mod registry;
pub mod request;
pub mod scheduler;
pub mod shard;
pub mod ticket;
pub mod trace;
pub mod worker;

pub use cache::{ArtifactCache, ModelArtifacts, ModelEntry, Retier, UpdateEffect};
pub use http::{HttpServer, HttpServerConfig};
pub use logits::{CachedLogits, LogitsCache};
pub use metrics::{LaneStat, LogHistogram, Metrics, MetricsReport, ShardReport, ShardStat};
pub use registry::{ModelRegistry, ModelSpec};
pub use request::{
    InferenceRequest, InferenceResponse, ModelKey, ServeResponse, UpdateRequest, UpdateResponse,
};
pub use scheduler::{Batch, BatchScheduler, FlushReason, SchedulerConfig, WorkItem};
pub use shard::{HwEstimate, ShardRefresh, ShardState};
pub use ticket::{CompletionRouter, Completions, Ticket, WaitError};
pub use trace::{
    process_memory, FlightRecorder, MemorySnapshot, ModelMemory, RequestTrace, TraceConfig,
    TraceRecord, TraceStage, Tracer,
};
pub use worker::{
    batch_logits, batch_logits_with_mode, shard_logits, shard_logits_with_mode, WorkRouter,
    WorkerPool,
};

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use mega_graph::{GraphDelta, NodeId};

/// Engine-level knobs.
///
/// There is deliberately no sweep-interval knob anymore: the deadline
/// sweeper is timer-driven ([`BatchScheduler::sweeper_park`]), waking at
/// exactly the earliest bucket deadline instead of on a fixed poll tick.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing batches.
    pub workers: usize,
    /// Batching policy.
    pub scheduler: SchedulerConfig,
    /// Artifact sets kept resident (LRU above this).
    pub cache_capacity: usize,
    /// Flight-recorder knobs: timeline ring capacities and the
    /// slow-outlier threshold ([`trace`]). Tracing itself is always on.
    pub trace: TraceConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .max(4);
        Self {
            workers,
            scheduler: SchedulerConfig::default(),
            cache_capacity: 8,
            trace: TraceConfig::default(),
        }
    }
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The model key is not in the registry.
    UnknownModel(ModelKey),
    /// The node id exceeds the model's graph.
    NodeOutOfRange {
        /// The requested node.
        node: NodeId,
        /// Number of nodes the model serves.
        nodes: usize,
    },
    /// An update payload is malformed (feature rows mismatching the
    /// delta's `AddNode` ops). Delta/topology errors surface later in the
    /// [`UpdateResponse`], since the graph may change before application.
    BadUpdate(String),
    /// A `*_wait` call submitted successfully but did not observe the
    /// response: the per-request deadline passed ([`WaitError::Timeout`] —
    /// the request is still in flight) or the engine dropped the request
    /// ([`WaitError::Dropped`]).
    Wait(WaitError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownModel(key) => write!(f, "model {key} is not registered"),
            ServeError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range (model has {nodes} nodes)")
            }
            ServeError::BadUpdate(reason) => write!(f, "bad update: {reason}"),
            ServeError::Wait(wait) => write!(f, "submitted, but {wait}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// What [`ServeEngine::health`] reports (and `GET /healthz` serializes).
#[derive(Debug, Clone)]
pub struct EngineHealth {
    /// Whether the deadline-sweeper thread is running.
    pub sweeper_alive: bool,
    /// Per-lane liveness, indexed by worker lane.
    pub lanes_alive: Vec<bool>,
    /// Requests submitted but not yet answered.
    pub in_flight: usize,
    /// Components that recovered from a poisoned lock (see
    /// [`crate::poison`]). The engine keeps serving through poison, but
    /// it signals a panic mid-update somewhere — report unhealthy so the
    /// replica gets drained and recycled rather than trusted forever.
    pub poisoned: Vec<&'static str>,
}

impl EngineHealth {
    /// Healthy means every thread the request path depends on is alive
    /// and no shared lock has been poisoned by a panicking holder.
    pub fn ok(&self) -> bool {
        self.sweeper_alive
            && self.lanes_alive.iter().all(|&alive| alive)
            && self.poisoned.is_empty()
    }

    /// A human-readable reason when unhealthy.
    pub fn reason(&self) -> Option<String> {
        if !self.sweeper_alive {
            return Some("deadline sweeper thread is dead".to_string());
        }
        let dead: Vec<String> = self
            .lanes_alive
            .iter()
            .enumerate()
            .filter(|&(_, &alive)| !alive)
            .map(|(lane, _)| lane.to_string())
            .collect();
        if !dead.is_empty() {
            return Some(format!("worker lane(s) {} dead", dead.join(", ")));
        }
        if !self.poisoned.is_empty() {
            return Some(format!("lock(s) {} poisoned", self.poisoned.join(", ")));
        }
        None
    }
}

/// The serving engine: scheduler + sweeper + worker pool + shared caches
/// + the completion router that wakes per-request waiters.
pub struct ServeEngine {
    registry: Arc<ModelRegistry>,
    cache: Arc<ArtifactCache>,
    scheduler: Arc<BatchScheduler>,
    metrics: Arc<Metrics>,
    pool: WorkerPool,
    sweeper: std::thread::JoinHandle<()>,
    shutdown: Arc<AtomicBool>,
    next_id: AtomicU64,
    started_at: Instant,
    /// Per-request completion slots ([`Ticket`]s) keyed by request id —
    /// also the engine's exact in-flight count, which admission control
    /// ([`http`]) sheds on.
    router: Arc<CompletionRouter>,
    /// The single response fan-out (ticket slot + optional legacy
    /// stream): the engine's own handle answers logits-cache hits right
    /// at submit time, never reaching the scheduler. Dropped with the
    /// engine at shutdown (after the workers' clones), which is what ends
    /// the stream.
    completions: Completions,
}

impl ServeEngine {
    /// Starts workers and the deadline sweeper; returns the engine plus the
    /// legacy broadcast stream (every response is delivered both to its
    /// [`Ticket`] and onto this stream). The stream ends when the engine
    /// shuts down.
    pub fn start(
        config: ServeConfig,
        registry: Arc<ModelRegistry>,
    ) -> (Self, Receiver<ServeResponse>) {
        let (response_tx, response_rx) = mpsc::channel();
        let engine = Self::start_inner(config, registry, Some(response_tx));
        (engine, response_rx)
    }

    /// Starts the engine without a legacy broadcast stream: responses are
    /// delivered only to their [`Ticket`]s. This is what request/response
    /// front-ends (e.g. [`http::HttpServer`]) use — nothing accumulates
    /// unread in a channel nobody drains.
    pub fn start_detached(config: ServeConfig, registry: Arc<ModelRegistry>) -> Self {
        Self::start_inner(config, registry, None)
    }

    fn start_inner(
        config: ServeConfig,
        registry: Arc<ModelRegistry>,
        stream: Option<Sender<ServeResponse>>,
    ) -> Self {
        let cache = Arc::new(ArtifactCache::new(config.cache_capacity));
        let metrics = Arc::new(Metrics::with_trace(&config.trace));
        let router = Arc::new(CompletionRouter::new());
        let completions = Completions::new(router.clone(), stream);
        // Workers first: each owns a private lane, and the router pinning
        // (model, shard) pairs to lanes becomes the scheduler's output.
        let updates = Arc::new(scheduler::UpdateQueue::default());
        let (pool, work_router) = WorkerPool::spawn(
            config.workers,
            registry.clone(),
            cache.clone(),
            updates.clone(),
            metrics.clone(),
            completions.clone(),
        );
        let scheduler = Arc::new(BatchScheduler::with_updates(
            config.scheduler.clone(),
            work_router,
            updates,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));
        // The deadline sweeper is timer-driven: it parks on the
        // scheduler's condvar until exactly the earliest bucket deadline
        // (or indefinitely while idle) and is woken early only when a
        // submit advances that deadline or at shutdown. Replaces the
        // fixed-interval sleep poll that woke ~2000×/s on an idle engine
        // and delivered deadline flushes up to one sweep interval late.
        let sweeper = {
            let scheduler = scheduler.clone();
            let shutdown = shutdown.clone();
            let metrics = metrics.clone();
            std::thread::Builder::new()
                .name("mega-serve-sweeper".into())
                .spawn(move || loop {
                    // Generation first: a re-arm landing after this capture
                    // (but before the park) makes the park return
                    // immediately, so no deadline is ever missed.
                    let generation = scheduler.sweep_generation();
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    metrics.sweeper_wakeups.fetch_add(1, Ordering::Relaxed);
                    scheduler.poll_deadlines(Instant::now());
                    let deadline = scheduler.next_deadline();
                    scheduler.sweeper_park(generation, deadline);
                })
                .expect("spawn sweeper thread")
        };
        Self {
            registry,
            cache,
            scheduler,
            metrics,
            pool,
            sweeper,
            shutdown,
            next_id: AtomicU64::new(0),
            started_at: Instant::now(),
            router,
            completions,
        }
    }

    /// Pre-builds (or touches) the artifacts for `key`, so the first
    /// requests do not pay the build latency.
    pub fn warm(&self, key: &ModelKey) -> Result<(), ServeError> {
        let spec = self
            .registry
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.clone()))?;
        self.cache
            .get_or_build(key, || ModelArtifacts::build(&spec));
        Ok(())
    }

    /// Accepts one node-classification request. Returns a [`Ticket`] —
    /// the claim on this request's response, delivered the moment it
    /// exists ([`Ticket::wait`]); the response also rides the legacy
    /// stream returned by [`ServeEngine::start`].
    ///
    /// Hot nodes short-circuit here: if the owning shard's
    /// [`LogitsCache`] holds the node, the response (flagged
    /// [`InferenceResponse::cached`]) is delivered immediately on the
    /// submitting thread — the returned ticket is already redeemable —
    /// and the request never reaches the scheduler. Delta-precise
    /// invalidation is what makes the cached row bit-exact with a fresh
    /// forward pass.
    ///
    /// The `(tier, bits)` stamped here only pick the scheduler bucket
    /// (batching homogeneity); workers restamp both from the live
    /// artifacts at execution time, so a concurrent re-tier never makes a
    /// response mis-report what the forward pass served.
    pub fn submit(&self, key: &ModelKey, node: NodeId) -> Result<Ticket, ServeError> {
        self.submit_traced(key, node, RequestTrace::begin())
    }

    /// [`ServeEngine::submit`] with a caller-started [`RequestTrace`]
    /// (the HTTP ingress starts the trace at request parse, so its
    /// timeline includes ingress and admission time; in-process callers
    /// go through [`ServeEngine::submit`], whose trace starts here).
    pub fn submit_traced(
        &self,
        key: &ModelKey,
        node: NodeId,
        mut trace: RequestTrace,
    ) -> Result<Ticket, ServeError> {
        let entry = self.entry_for(key)?;
        let artifacts = entry.read();
        Self::validate_node(&artifacts, node)?;
        let shard = artifacts.shard_of(node);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        // Register the completion slot *before* the request can reach a
        // worker: delivery can then never race registration.
        let ticket = self.router.register(id);
        self.metrics.submitted.fetch_add(1, Ordering::Relaxed);
        let submitted_at = Instant::now();
        trace.stamp_at(TraceStage::Submitted, submitted_at);
        if let Some(hit) = artifacts.logits_cache(shard).and_then(|c| c.get(node)) {
            self.metrics.record_logits_lookup(shard, true);
            trace.stamp(TraceStage::CacheHit);
            let response = InferenceResponse::from_hit(
                id,
                key.clone(),
                node,
                shard,
                None,
                hit,
                submitted_at.elapsed(),
            );
            self.metrics
                .record_response(response.bits, response.latency);
            self.completions
                .deliver_traced(response, &mut trace, &self.metrics.trace);
            return Ok(ticket);
        }
        let (tier, bits) = (artifacts.node_tier(node), artifacts.node_bits(node));
        drop(artifacts);
        self.scheduler.submit(InferenceRequest {
            id,
            model: key.clone(),
            node,
            shard,
            tier,
            bits,
            submitted_at,
            trace,
        });
        Ok(ticket)
    }

    /// Blocking request/response: submits and waits for the answer with a
    /// per-request deadline. Equivalent to [`ServeEngine::submit`] +
    /// [`Ticket::wait_inference`]; a deadline miss surfaces as
    /// [`ServeError::Wait`] (the request itself stays in flight and its
    /// response still reaches the legacy stream).
    pub fn submit_wait(
        &self,
        key: &ModelKey,
        node: NodeId,
        timeout: Duration,
    ) -> Result<InferenceResponse, ServeError> {
        let ticket = self.submit(key, node)?;
        ticket.wait_inference(timeout).map_err(ServeError::Wait)
    }

    /// [`ServeEngine::submit_wait`] with a caller-started
    /// [`RequestTrace`] — the HTTP predict handler's path, whose traces
    /// then cover ingress parse and admission, not just engine time.
    pub fn submit_wait_traced(
        &self,
        key: &ModelKey,
        node: NodeId,
        timeout: Duration,
        trace: RequestTrace,
    ) -> Result<InferenceResponse, ServeError> {
        let ticket = self.submit_traced(key, node, trace)?;
        ticket.wait_inference(timeout).map_err(ServeError::Wait)
    }

    /// Accepts one graph-mutation request. The delta is applied by a
    /// worker — serialized per model, interleaved with inference batches —
    /// and acknowledged with a [`UpdateResponse`] on the response stream.
    ///
    /// `node_features` carries one raw feature row per `AddNode` op in
    /// `delta`. Malformed payloads fail fast here; topology errors (e.g. a
    /// node id that is stale by application time) surface in the response,
    /// rejected deltas changing nothing. The returned [`Ticket`] delivers
    /// the [`UpdateResponse`] acknowledgement; because updates are applied
    /// FIFO per model, waiting on it also fences every earlier update to
    /// the same model.
    pub fn submit_update(
        &self,
        key: &ModelKey,
        delta: GraphDelta,
        node_features: Vec<Vec<f32>>,
    ) -> Result<Ticket, ServeError> {
        if self.registry.get(key).is_none() {
            return Err(ServeError::UnknownModel(key.clone()));
        }
        if node_features.len() != delta.nodes_added() {
            return Err(ServeError::BadUpdate(format!(
                "delta adds {} node(s) but {} feature row(s) were provided",
                delta.nodes_added(),
                node_features.len()
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let ticket = self.router.register(id);
        self.metrics
            .updates_submitted
            .fetch_add(1, Ordering::Relaxed);
        self.scheduler.submit_update(UpdateRequest {
            id,
            model: key.clone(),
            delta,
            node_features,
            submitted_at: Instant::now(),
        });
        Ok(ticket)
    }

    /// Blocking mutation: submits a delta and waits for its
    /// acknowledgement. Equivalent to [`ServeEngine::submit_update`] +
    /// [`Ticket::wait_update`].
    pub fn submit_update_wait(
        &self,
        key: &ModelKey,
        delta: GraphDelta,
        node_features: Vec<Vec<f32>>,
        timeout: Duration,
    ) -> Result<UpdateResponse, ServeError> {
        let ticket = self.submit_update(key, delta, node_features)?;
        ticket.wait_update(timeout).map_err(ServeError::Wait)
    }

    /// The current `(tier, bits)` the degree-aware policy serves `node`
    /// at — observably changes when updates move the node across a tier
    /// boundary.
    pub fn probe(&self, key: &ModelKey, node: NodeId) -> Result<(usize, u8), ServeError> {
        let (_, tier, bits) = self.locate(key, node)?;
        Ok((tier, bits))
    }

    /// Where and how `node` is served right now: `(shard, tier, bits)`.
    /// The shard is the partition owning the node; requests route to that
    /// shard's affine worker and execute against its local slice.
    pub fn locate(&self, key: &ModelKey, node: NodeId) -> Result<(u32, usize, u8), ServeError> {
        let entry = self.entry_for(key)?;
        let artifacts = entry.read();
        Self::validate_node(&artifacts, node)?;
        Ok((
            artifacts.shard_of(node),
            artifacts.node_tier(node),
            artifacts.node_bits(node),
        ))
    }

    /// Resolves `key` to its resident artifact entry, building it from the
    /// registered spec on first access — the single lookup path `submit`
    /// and `locate` share.
    fn entry_for(&self, key: &ModelKey) -> Result<Arc<ModelEntry>, ServeError> {
        let spec = self
            .registry
            .get(key)
            .ok_or_else(|| ServeError::UnknownModel(key.clone()))?;
        Ok(self
            .cache
            .get_or_build(key, || ModelArtifacts::build(&spec)))
    }

    /// Validates `node` against the live (possibly mutated) graph.
    fn validate_node(artifacts: &ModelArtifacts, node: NodeId) -> Result<(), ServeError> {
        if node as usize >= artifacts.num_nodes() {
            return Err(ServeError::NodeOutOfRange {
                node,
                nodes: artifacts.num_nodes(),
            });
        }
        Ok(())
    }

    /// Requests waiting in scheduler buckets (not yet dispatched).
    pub fn pending(&self) -> usize {
        self.scheduler.pending()
    }

    /// Updates parked for application (token emitted, not yet taken by a
    /// worker).
    pub fn pending_updates(&self) -> usize {
        self.scheduler.pending_updates()
    }

    /// Requests (inference + updates) submitted but not yet answered —
    /// the exact count of outstanding completion slots, and the signal
    /// admission control ([`http`]) sheds load on.
    pub fn in_flight(&self) -> usize {
        self.router.in_flight()
    }

    /// The live metrics handle.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Point-in-time liveness: is the sweeper thread running, which
    /// worker lanes are running, and how many requests are in flight.
    /// This is what `GET /healthz` reports — a panicked lane flips the
    /// endpoint to 503 because every `(model, shard)` pinned to that lane
    /// would otherwise time out silently.
    pub fn health(&self) -> EngineHealth {
        EngineHealth {
            sweeper_alive: !self.sweeper.is_finished(),
            lanes_alive: self.pool.alive(),
            in_flight: self.in_flight(),
            poisoned: poison::poisoned_components(),
        }
    }

    /// Per-model resident-bytes breakdown over every artifact set
    /// currently resident in the cache, sorted by model key for stable
    /// exposition. Computed from the live structures (feature slices,
    /// adjacency rows, logits caches) — no shadow accounting to drift.
    pub fn memory(&self) -> Vec<ModelMemory> {
        let mut memory: Vec<ModelMemory> = self
            .cache
            .resident()
            .into_iter()
            .map(|(_, entry)| entry.read().resident_bytes())
            .collect();
        memory.sort_by(|a, b| {
            (&a.model.dataset, a.model.kind.name()).cmp(&(&b.model.dataset, b.model.kind.name()))
        });
        memory
    }

    /// Fault injection for liveness testing: makes worker lane
    /// `lane % workers` panic on its next dequeue, exactly as a bug in
    /// batch execution would. `/healthz` must flip to 503; requests
    /// pinned to the dead lane will time out. Not for production use.
    pub fn poison_lane(&self, lane: usize) {
        self.scheduler.poison_lane(lane);
    }

    /// Point-in-time report including cache behaviour.
    pub fn report(&self) -> MetricsReport {
        let (hits, misses) = self.cache.stats();
        self.metrics.report(self.started_at.elapsed(), hits, misses)
    }

    /// Drains every pending request, stops all threads, and returns the
    /// final report. Blocks until every submitted request was answered.
    pub fn shutdown(self) -> MetricsReport {
        let Self {
            cache,
            scheduler,
            metrics,
            pool,
            sweeper,
            shutdown,
            started_at,
            ..
        } = self;
        shutdown.store(true, Ordering::Relaxed);
        // The sweeper may be parked indefinitely (idle engine); the
        // generation bump is what wakes it to observe the flag.
        scheduler.wake_sweeper();
        sweeper.join().expect("sweeper thread panicked");
        scheduler.flush_all();
        // Dropping the scheduler drops the batch sender; workers drain the
        // queue and exit.
        drop(scheduler);
        pool.join();
        let (hits, misses) = cache.stats();
        metrics.report(started_at.elapsed(), hits, misses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::GnnKind;
    use mega_graph::DatasetSpec;

    fn tiny_registry() -> (Arc<ModelRegistry>, ModelKey) {
        let registry = Arc::new(ModelRegistry::new());
        let key = registry.register(ModelSpec::standard(
            DatasetSpec::cora().scaled(0.05).with_feature_dim(32),
            GnnKind::Gcn,
        ));
        (registry, key)
    }

    #[test]
    fn rejects_unknown_model_and_bad_node() {
        let (registry, key) = tiny_registry();
        let config = ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        };
        let (engine, _responses) = ServeEngine::start(config, registry);
        let missing = ModelKey::new("Nope", GnnKind::Gcn);
        assert_eq!(
            engine.submit(&missing, 0).unwrap_err(),
            ServeError::UnknownModel(missing.clone())
        );
        assert!(engine.warm(&missing).is_err());
        let err = engine.submit(&key, 1_000_000).unwrap_err();
        assert!(matches!(err, ServeError::NodeOutOfRange { .. }));
        assert_eq!(engine.in_flight(), 0, "rejected submits leave no slot");
        let report = engine.shutdown();
        assert_eq!(report.submitted, 0);
    }

    #[test]
    fn serves_every_submitted_request_exactly_once() {
        let (registry, key) = tiny_registry();
        let config = ServeConfig {
            workers: 4,
            scheduler: SchedulerConfig {
                max_batch: 8,
                max_delay: Duration::from_millis(1),
            },
            ..ServeConfig::default()
        };
        let (engine, responses) = ServeEngine::start(config, registry);
        engine.warm(&key).unwrap();
        let n = 100;
        let mut ids = std::collections::HashSet::new();
        for i in 0..n {
            ids.insert(engine.submit(&key, (i % 50) as NodeId).unwrap().id());
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, n as u64);
        assert_eq!(report.submitted, n as u64);
        let mut answered = std::collections::HashSet::new();
        for response in responses.iter() {
            let response = response.into_inference().expect("no updates submitted");
            assert!(answered.insert(response.id), "duplicate response");
            assert!(ids.contains(&response.id));
            assert!(!response.logits.is_empty());
            assert!(response.batch_size >= 1);
        }
        assert_eq!(answered.len(), n as usize);
        assert!(report.cache_hit_rate > 0.9, "warm cache expected");
        assert!(report.batches > 0 && report.avg_batch >= 1.0);
    }

    #[test]
    fn updates_are_acknowledged_and_validated() {
        let (registry, key) = tiny_registry();
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let (engine, responses) = ServeEngine::start(config, registry);
        engine.warm(&key).unwrap();
        // Malformed payload fails fast.
        let mut delta = GraphDelta::new();
        delta.add_node();
        assert!(matches!(
            engine.submit_update(&key, delta, vec![]),
            Err(ServeError::BadUpdate(_))
        ));
        let missing = ModelKey::new("Nope", GnnKind::Gcn);
        assert!(matches!(
            engine.submit_update(&missing, GraphDelta::new(), vec![]),
            Err(ServeError::UnknownModel(_))
        ));
        // A valid delta and a delta that fails at application time.
        let mut ok = GraphDelta::new();
        ok.insert_edge(1, 0);
        let ok_id = engine.submit_update(&key, ok, vec![]).unwrap().id();
        let mut stale = GraphDelta::new();
        stale.insert_edge(0, 1_000_000);
        let bad_id = engine.submit_update(&key, stale, vec![]).unwrap().id();
        let report = engine.shutdown();
        assert_eq!(report.updates_submitted, 2);
        assert_eq!(report.updates_applied, 1);
        assert_eq!(report.updates_failed, 1);
        let updates: Vec<_> = responses.iter().filter_map(|r| r.into_update()).collect();
        assert_eq!(updates.len(), 2);
        let ok_ack = updates.iter().find(|u| u.id == ok_id).unwrap();
        assert!(ok_ack.applied());
        assert_eq!(ok_ack.version, 1);
        let bad_ack = updates.iter().find(|u| u.id == bad_id).unwrap();
        assert!(bad_ack.error.as_deref().unwrap().contains("out of range"));
    }
}
