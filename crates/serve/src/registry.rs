//! The model registry: which (dataset, architecture) pairs the engine
//! serves, and with what policy/layout knobs.

use mega::sync::RwLock;
use std::collections::HashMap;

use crate::poison::LockRecoverExt;

use mega_gnn::GnnKind;
use mega_graph::DatasetSpec;
use mega_quant::DegreePolicy;

use crate::request::ModelKey;

/// Everything needed to (re)build a served model's artifacts from scratch.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Dataset recipe (synthetic Table II presets or custom).
    pub dataset: DatasetSpec,
    /// GNN architecture.
    pub kind: GnnKind,
    /// Degree → bitwidth policy for activations.
    pub policy: DegreePolicy,
    /// Bitwidth for (static) weights.
    pub weight_bits: u8,
    /// Shard count: the graph is partitioned into this many parts, each
    /// served from its own adjacency/feature slice by a shard-affine
    /// worker (also the locality-ordering granularity for batches).
    pub shards: usize,
    /// Logits-cache byte budget for this model, split evenly across its
    /// shards ([`crate::LogitsCache`]). `0` disables result caching — every
    /// request runs the forward pass.
    pub cache_bytes: usize,
}

impl ModelSpec {
    /// Default per-model logits-cache budget: comfortably holds every node
    /// of the citation datasets while staying a rounding error next to the
    /// artifacts themselves.
    pub const DEFAULT_CACHE_BYTES: usize = 8 << 20;

    /// A spec with the paper-default policy, 4-bit weights, 4 shards, and
    /// an 8 MiB logits cache.
    pub fn standard(dataset: DatasetSpec, kind: GnnKind) -> Self {
        Self {
            dataset,
            kind,
            policy: DegreePolicy::paper_default(),
            weight_bits: 4,
            shards: 4,
            cache_bytes: Self::DEFAULT_CACHE_BYTES,
        }
    }

    /// Replaces the shard count (clamped to the node count at build time;
    /// `1` disables cross-shard halo exchange entirely).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Replaces the logits-cache byte budget (`0` disables caching).
    pub fn with_cache_bytes(mut self, cache_bytes: usize) -> Self {
        self.cache_bytes = cache_bytes;
        self
    }

    /// The key requests use to address this model.
    pub fn key(&self) -> ModelKey {
        ModelKey::new(self.dataset.name.clone(), self.kind)
    }
}

/// Thread-safe registry of served models.
#[derive(Default)]
pub struct ModelRegistry {
    models: RwLock<HashMap<ModelKey, ModelSpec>>,
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a model; returns its key.
    pub fn register(&self, spec: ModelSpec) -> ModelKey {
        let key = spec.key();
        self.models
            .write()
            .recover("model-registry")
            .insert(key.clone(), spec);
        key
    }

    /// Looks up the spec for a key.
    pub fn get(&self, key: &ModelKey) -> Option<ModelSpec> {
        self.models
            .read()
            .recover("model-registry")
            .get(key)
            .cloned()
    }

    /// All registered keys, sorted for stable iteration.
    pub fn keys(&self) -> Vec<ModelKey> {
        let mut keys: Vec<ModelKey> = self
            .models
            .read()
            .recover("model-registry")
            .keys()
            .cloned()
            .collect();
        keys.sort_by(|a, b| (&a.dataset, a.kind.name()).cmp(&(&b.dataset, b.kind.name())));
        keys
    }

    /// Number of registered models.
    pub fn len(&self) -> usize {
        self.models.read().recover("model-registry").len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup_roundtrip() {
        let registry = ModelRegistry::new();
        assert!(registry.is_empty());
        let key = registry.register(ModelSpec::standard(
            DatasetSpec::cora().scaled(0.1),
            GnnKind::Gcn,
        ));
        assert_eq!(key, ModelKey::new("Cora", GnnKind::Gcn));
        let spec = registry.get(&key).expect("registered");
        assert_eq!(spec.weight_bits, 4);
        assert_eq!(spec.cache_bytes, ModelSpec::DEFAULT_CACHE_BYTES);
        let uncached = spec.clone().with_cache_bytes(0);
        assert_eq!(uncached.cache_bytes, 0, "0 disables result caching");
        assert!(registry.get(&ModelKey::new("Nope", GnnKind::Gcn)).is_none());
        assert_eq!(registry.keys(), vec![key]);
    }

    #[test]
    fn reregistering_replaces() {
        let registry = ModelRegistry::new();
        let mut spec = ModelSpec::standard(DatasetSpec::cora().scaled(0.1), GnnKind::Gcn);
        registry.register(spec.clone());
        spec.weight_bits = 8;
        let key = registry.register(spec);
        assert_eq!(registry.len(), 1);
        assert_eq!(registry.get(&key).unwrap().weight_bits, 8);
    }
}
