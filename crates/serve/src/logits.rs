//! The per-`(model, shard)` logits cache: a byte-capacity LRU over final
//! per-node logits that short-circuits the forward pass for hot nodes.
//!
//! MEGA's premise is traffic skew — a small set of high-degree hub nodes
//! dominates aggregation cost, which is why the paper tiers precision by
//! degree in the first place. The same skew makes per-node *results*
//! cacheable: a hub queried thousands of times between graph mutations
//! needs one forward pass, not thousands. A [`crate::ModelArtifacts`]
//! carries one [`LogitsCache`] per shard (a node's entry lives in its
//! owning shard's cache); the engine consults it at submit time (a hit
//! never reaches the scheduler — the response is delivered straight into
//! the request's [`crate::Ticket`] slot on the submitting thread, so a
//! `submit_wait` hit completes in microseconds) and workers consult it
//! again per batch (a miss at submit time may have been filled by an
//! earlier batch), inserting freshly computed rows on the way out.
//!
//! **Correctness is an invalidation property.** A cached row for target
//! `t` is a pure function of the weights plus everything in `t`'s `L`-hop
//! receptive field: quantized feature rows, normalized adjacency rows, and
//! per-node bitwidths (the hidden-activation quantizer keys on them). So
//! when [`crate::ModelArtifacts::apply_delta`] lands a delta, it
//! invalidates exactly the targets whose field intersects the mutated
//! rows, computed as the *inverse* halo closure
//! ([`mega_partition::influence_closure_with`]): `t` reads row `u` iff `u`
//! reaches `t` within `L` out-edge hops. Everything outside that set keeps
//! serving from cache bit-exactly — the property
//! `crates/serve/tests/logits_cache.rs` proves under random churn for
//! K ∈ {1, 2, 4} × every aggregator. Weight or policy changes only happen
//! through re-registration, which rebuilds the artifacts and therefore
//! starts from an empty cache.
//!
//! Capacity is budgeted in **bytes**, not entries ([`ModelSpec::cache_bytes`]
//! split evenly across shards), because logits rows scale with the class
//! count and an entry-count limit would make memory use dataset-dependent.
//! Eviction is strict LRU via a recency index, `O(log n)` per touch.
//!
//! [`ModelSpec::cache_bytes`]: crate::ModelSpec::cache_bytes

use mega::sync::Mutex;
use std::collections::{BTreeMap, HashMap};

use crate::poison::LockRecoverExt;

use mega_graph::NodeId;

/// Fixed per-entry byte charge on top of the logits payload: the key, the
/// served `(bits, tier)` snapshot, the recency tick, and amortized map
/// overhead. An estimate (exact allocator accounting is not portable), but
/// a deliberately conservative one so the configured budget is an upper
/// bound in practice.
pub const ENTRY_OVERHEAD_BYTES: usize = 64;

/// One cached result: the logits row plus the serving metadata the
/// response carries, snapshotted at compute time (invalidation guarantees
/// they are still current whenever the entry is readable).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedLogits {
    /// Final-layer logits, one per class, bit-exact with a fresh pass.
    pub logits: Vec<f32>,
    /// `argmax` of `logits`.
    pub predicted_class: usize,
    /// Activation bitwidth the node was served at.
    pub bits: u8,
    /// Precision tier (0 = fewest bits).
    pub tier: usize,
}

struct Slot {
    cached: CachedLogits,
    tick: u64,
}

struct Inner {
    map: HashMap<NodeId, Slot>,
    /// tick -> node, the LRU order (ticks are unique, so this is a total
    /// order on resident entries).
    recency: BTreeMap<u64, NodeId>,
    tick: u64,
    bytes: usize,
}

/// A byte-capacity LRU of per-node logits for one `(model, shard)` pair.
///
/// Thread-safe behind an internal mutex; contention is naturally low
/// because the worker pool is shard-affine (one lane ever inserts into a
/// given shard's cache) and submit-path lookups are sub-microsecond. The
/// cache carries no counters of its own — every mutating call returns what
/// it did so callers attribute hits/misses/evictions/invalidations to
/// [`crate::Metrics`] with answered-request semantics.
pub struct LogitsCache {
    capacity_bytes: usize,
    inner: Mutex<Inner>,
}

impl LogitsCache {
    /// A cache holding at most `capacity_bytes` of entries (payload plus
    /// [`ENTRY_OVERHEAD_BYTES`] each). `0` disables the cache: lookups
    /// miss, inserts are dropped — the uncached baseline path.
    pub fn new(capacity_bytes: usize) -> Self {
        Self {
            capacity_bytes,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                recency: BTreeMap::new(),
                tick: 0,
                bytes: 0,
            }),
        }
    }

    /// Whether the cache can ever hold anything.
    pub fn is_enabled(&self) -> bool {
        self.capacity_bytes > 0
    }

    /// The configured byte budget.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// The byte charge of one entry with `classes` logits.
    pub fn entry_bytes(classes: usize) -> usize {
        classes * std::mem::size_of::<f32>() + ENTRY_OVERHEAD_BYTES
    }

    /// Looks up `node`, refreshing its recency on a hit.
    pub fn get(&self, node: NodeId) -> Option<CachedLogits> {
        if !self.is_enabled() {
            return None;
        }
        let mut inner = self.inner.lock().recover("logits-cache");
        inner.tick += 1;
        let tick = inner.tick;
        let slot = inner.map.get_mut(&node)?;
        let old_tick = std::mem::replace(&mut slot.tick, tick);
        let cached = slot.cached.clone();
        inner.recency.remove(&old_tick);
        inner.recency.insert(tick, node);
        Some(cached)
    }

    /// Inserts (or replaces) `node`'s entry and evicts LRU entries until
    /// the byte budget holds. Returns how many entries were evicted. An
    /// entry larger than the whole budget is not admitted (it would only
    /// evict everything and then thrash).
    pub fn insert(&self, node: NodeId, cached: CachedLogits) -> usize {
        let bytes = Self::entry_bytes(cached.logits.len());
        if bytes > self.capacity_bytes {
            return 0;
        }
        let mut inner = self.inner.lock().recover("logits-cache");
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(old) = inner.map.insert(node, Slot { cached, tick }) {
            inner.recency.remove(&old.tick);
            inner.bytes -= Self::entry_bytes(old.cached.logits.len());
        }
        inner.recency.insert(tick, node);
        inner.bytes += bytes;
        let mut evicted = 0;
        while inner.bytes > self.capacity_bytes {
            let (&lru_tick, &lru_node) = inner
                .recency
                .iter()
                .next()
                .expect("over budget implies resident entries");
            // The just-inserted entry fits on its own, so the LRU victim
            // here is never the entry being inserted.
            debug_assert_ne!(lru_tick, tick);
            inner.recency.remove(&lru_tick);
            let slot = inner.map.remove(&lru_node).expect("recency maps to map");
            inner.bytes -= Self::entry_bytes(slot.cached.logits.len());
            evicted += 1;
        }
        evicted
    }

    /// Drops every entry whose node appears in `stale` (ascending node
    /// ids). Returns how many entries were actually dropped. This is the
    /// delta-invalidation entry point: callers pass the inverse halo
    /// closure of the delta's dirty rows.
    pub fn invalidate(&self, stale: &[NodeId]) -> usize {
        if stale.is_empty() {
            return 0;
        }
        let mut inner = self.inner.lock().recover("logits-cache");
        // Walk the smaller side: a churn-heavy delta can dirty most of the
        // graph while the cache holds few entries, and vice versa.
        let resident: Vec<NodeId> = if stale.len() < inner.map.len() {
            stale
                .iter()
                .copied()
                .filter(|v| inner.map.contains_key(v))
                .collect()
        } else {
            inner
                .map
                .keys()
                .copied()
                .filter(|v| stale.binary_search(v).is_ok())
                .collect()
        };
        for v in &resident {
            let slot = inner.map.remove(v).expect("resident entry");
            inner.recency.remove(&slot.tick);
            inner.bytes -= Self::entry_bytes(slot.cached.logits.len());
        }
        resident.len()
    }

    /// Drops everything. Returns how many entries were dropped — the
    /// flush path for changes that void every cached row at once (e.g. an
    /// explicit operator flush; weight changes rebuild the artifacts and
    /// never reach a live cache).
    pub fn flush(&self) -> usize {
        let mut inner = self.inner.lock().recover("logits-cache");
        let dropped = inner.map.len();
        inner.map.clear();
        inner.recency.clear();
        inner.bytes = 0;
        dropped
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.inner.lock().recover("logits-cache").map.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes currently charged against the budget.
    pub fn bytes(&self) -> usize {
        self.inner.lock().recover("logits-cache").bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: f32, classes: usize) -> CachedLogits {
        let logits: Vec<f32> = (0..classes).map(|c| seed + c as f32).collect();
        CachedLogits {
            predicted_class: classes - 1,
            logits,
            bits: 2,
            tier: 0,
        }
    }

    #[test]
    fn get_insert_roundtrip_and_byte_accounting() {
        let cache = LogitsCache::new(10 * LogitsCache::entry_bytes(4));
        assert!(cache.is_enabled() && cache.is_empty());
        assert!(cache.get(7).is_none());
        assert_eq!(cache.insert(7, entry(1.0, 4)), 0);
        assert_eq!(cache.get(7).unwrap(), entry(1.0, 4));
        assert_eq!(cache.bytes(), LogitsCache::entry_bytes(4));
        // Replacement does not double-charge.
        cache.insert(7, entry(2.0, 4));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), LogitsCache::entry_bytes(4));
        assert_eq!(cache.get(7).unwrap().logits[0], 2.0);
    }

    #[test]
    fn eviction_is_lru_by_bytes() {
        // Room for exactly two 4-class entries.
        let cache = LogitsCache::new(2 * LogitsCache::entry_bytes(4));
        cache.insert(0, entry(0.0, 4));
        cache.insert(1, entry(1.0, 4));
        // Touch 0 so 1 becomes LRU; inserting 2 must evict 1.
        assert!(cache.get(0).is_some());
        assert_eq!(cache.insert(2, entry(2.0, 4)), 1);
        assert!(cache.get(0).is_some(), "recently used survives");
        assert!(cache.get(1).is_none(), "LRU entry evicted");
        assert!(cache.get(2).is_some());
        assert!(cache.bytes() <= cache.capacity_bytes());
    }

    #[test]
    fn oversized_entries_are_not_admitted() {
        let cache = LogitsCache::new(LogitsCache::entry_bytes(2));
        assert_eq!(cache.insert(0, entry(0.0, 1000)), 0);
        assert!(cache.is_empty(), "an entry above the budget is rejected");
        // A fitting entry still works.
        cache.insert(1, entry(1.0, 2));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disabled_cache_never_stores() {
        let cache = LogitsCache::new(0);
        assert!(!cache.is_enabled());
        assert_eq!(cache.insert(0, entry(0.0, 1)), 0);
        assert!(cache.get(0).is_none());
        assert_eq!(cache.flush(), 0);
    }

    #[test]
    fn invalidate_drops_exactly_the_stale_set() {
        let cache = LogitsCache::new(16 * LogitsCache::entry_bytes(4));
        for v in 0..8u32 {
            cache.insert(v, entry(v as f32, 4));
        }
        let bytes_before = cache.bytes();
        // Stale list may include non-resident nodes; only resident drops
        // count.
        assert_eq!(cache.invalidate(&[1, 3, 100]), 2);
        assert!(cache.get(1).is_none() && cache.get(3).is_none());
        assert!(cache.get(0).is_some() && cache.get(7).is_some());
        assert_eq!(
            cache.bytes(),
            bytes_before - 2 * LogitsCache::entry_bytes(4)
        );
        assert_eq!(cache.invalidate(&[]), 0);
        // The cache-larger-than-stale and stale-larger-than-cache walks
        // agree.
        let big_stale: Vec<u32> = (0..1000).collect();
        assert_eq!(cache.invalidate(&big_stale), 6);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn flush_empties_everything() {
        let cache = LogitsCache::new(16 * LogitsCache::entry_bytes(4));
        for v in 0..5u32 {
            cache.insert(v, entry(v as f32, 4));
        }
        assert_eq!(cache.flush(), 5);
        assert!(cache.is_empty());
        assert_eq!(cache.bytes(), 0);
        // Reusable after a flush.
        cache.insert(9, entry(9.0, 4));
        assert_eq!(cache.len(), 1);
    }
}
