//! The smallest JSON layer that can carry the ingress's wire format:
//! a recursive-descent parser into a [`Json`] value tree plus the few
//! serialization helpers the response renderers need. Hand-rolled on
//! purpose — the build is offline (no serde), and the subset here (no
//! `\u` surrogate pairs beyond the BMP, f64 numbers) is exactly what the
//! endpoints consume and produce.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl From<u64> for Json {
    fn from(value: u64) -> Self {
        Json::Num(value as f64)
    }
}

impl From<f64> for Json {
    fn from(value: f64) -> Self {
        Json::Num(value)
    }
}

impl From<String> for Json {
    fn from(value: String) -> Self {
        Json::Str(value)
    }
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(values) => Some(values),
            _ => None,
        }
    }

    /// Serializes back to JSON text.
    pub fn render(&self) -> String {
        match self {
            Json::Null => "null".to_string(),
            Json::Bool(b) => b.to_string(),
            Json::Num(n) => render_number(*n),
            Json::Str(s) => escape_string(s),
            Json::Arr(values) => {
                let inner: Vec<String> = values.iter().map(Json::render).collect();
                format!("[{}]", inner.join(","))
            }
            Json::Obj(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(k, v)| format!("{}:{}", escape_string(k), v.render()))
                    .collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Renders a number the way the wire format wants it: integers without a
/// fraction, floats via `f64`'s shortest round-trip formatting, and the
/// non-finite values (which JSON cannot carry) as `null`.
fn render_number(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        // `{:?}` is Rust's shortest f64 round-trip form.
        format!("{n:?}")
    }
}

/// Escapes `s` into a quoted JSON string literal.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Appends `"name":value,` to a JSON object under construction (the
/// caller pops the trailing comma before closing the brace).
pub fn field(out: &mut String, name: &str, value: Json) {
    out.push_str(&escape_string(name));
    out.push(':');
    out.push_str(&value.render());
    out.push(',');
}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(bytes: &[u8]) -> Result<Json, &'static str> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8")?;
    let mut parser = Parser {
        chars: text.char_indices().peekable(),
        text,
        depth: 0,
    };
    parser.skip_whitespace();
    let value = parser.value()?;
    parser.skip_whitespace();
    if parser.chars.next().is_some() {
        return Err("trailing garbage after JSON value");
    }
    Ok(value)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    text: &'a str,
    depth: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
            self.chars.next();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), &'static str> {
        match self.chars.next() {
            Some((_, found)) if found == c => Ok(()),
            _ => Err("unexpected character"),
        }
    }

    fn literal(&mut self, rest: &str, value: Json) -> Result<Json, &'static str> {
        for expected in rest.chars() {
            self.expect(expected).map_err(|_| "bad literal")?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, &'static str> {
        if self.depth >= MAX_DEPTH {
            return Err("nesting too deep");
        }
        self.skip_whitespace();
        let Some(&(start, c)) = self.chars.peek() else {
            return Err("unexpected end of input");
        };
        match c {
            'n' => {
                self.chars.next();
                self.literal("ull", Json::Null)
            }
            't' => {
                self.chars.next();
                self.literal("rue", Json::Bool(true))
            }
            'f' => {
                self.chars.next();
                self.literal("alse", Json::Bool(false))
            }
            '"' => self.string().map(Json::Str),
            '[' => {
                self.chars.next();
                self.depth += 1;
                let mut values = Vec::new();
                self.skip_whitespace();
                if matches!(self.chars.peek(), Some((_, ']'))) {
                    self.chars.next();
                } else {
                    loop {
                        values.push(self.value()?);
                        self.skip_whitespace();
                        match self.chars.next() {
                            Some((_, ',')) => continue,
                            Some((_, ']')) => break,
                            _ => return Err("expected ',' or ']'"),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(values))
            }
            '{' => {
                self.chars.next();
                self.depth += 1;
                let mut fields = Vec::new();
                self.skip_whitespace();
                if matches!(self.chars.peek(), Some((_, '}'))) {
                    self.chars.next();
                } else {
                    loop {
                        self.skip_whitespace();
                        let key = self.string()?;
                        self.skip_whitespace();
                        self.expect(':').map_err(|_| "expected ':'")?;
                        let value = self.value()?;
                        fields.push((key, value));
                        self.skip_whitespace();
                        match self.chars.next() {
                            Some((_, ',')) => continue,
                            Some((_, '}')) => break,
                            _ => return Err("expected ',' or '}'"),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(fields))
            }
            '-' | '0'..='9' => self.number(start),
            _ => Err("unexpected character"),
        }
    }

    fn string(&mut self) -> Result<String, &'static str> {
        self.expect('"').map_err(|_| "expected string")?;
        let mut out = String::new();
        loop {
            match self.chars.next() {
                Some((_, '"')) => return Ok(out),
                Some((_, '\\')) => match self.chars.next() {
                    Some((_, '"')) => out.push('"'),
                    Some((_, '\\')) => out.push('\\'),
                    Some((_, '/')) => out.push('/'),
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, 't')) => out.push('\t'),
                    Some((_, 'r')) => out.push('\r'),
                    Some((_, 'b')) => out.push('\u{8}'),
                    Some((_, 'f')) => out.push('\u{c}'),
                    Some((_, 'u')) => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let Some((_, h)) = self.chars.next() else {
                                return Err("truncated \\u escape");
                            };
                            let digit = h.to_digit(16).ok_or("bad \\u escape")?;
                            code = code * 16 + digit;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    _ => return Err("bad escape"),
                },
                Some((_, c)) => out.push(c),
                None => return Err("unterminated string"),
            }
        }
    }

    fn number(&mut self, start: usize) -> Result<Json, &'static str> {
        let mut end = start;
        while let Some(&(i, c)) = self.chars.peek() {
            if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                end = i + c.len_utf8();
                self.chars.next();
            } else {
                break;
            }
        }
        self.text[start..end]
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|_| "bad number")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_wire_shapes() {
        let body = parse(br#"{"node": 17, "timeout_ms": 250}"#).unwrap();
        assert_eq!(body.get("node").unwrap().as_u64(), Some(17));
        let update =
            parse(br#"{"insert": [[0, 1], [2, 3]], "remove": [], "add_nodes": [[0.5, -1.25e1]]}"#)
                .unwrap();
        let insert = update.get("insert").unwrap().as_array().unwrap();
        assert_eq!(insert.len(), 2);
        assert_eq!(insert[1].as_array().unwrap()[0].as_u64(), Some(2));
        let row = update.get("add_nodes").unwrap().as_array().unwrap()[0]
            .as_array()
            .unwrap();
        assert_eq!(row[1].as_f64(), Some(-12.5));
        assert!(update.get("remove").unwrap().as_array().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            &b"{"[..],
            b"[1,]",
            b"{\"a\" 1}",
            b"nul",
            b"\"unterminated",
            b"1 2",
            b"{\"a\":1}x",
        ] {
            assert!(
                parse(bad).is_err(),
                "{:?} parsed",
                String::from_utf8_lossy(bad)
            );
        }
        // Nesting bomb stays bounded.
        let bomb = b"[".repeat(100);
        assert_eq!(parse(&bomb), Err("nesting too deep"));
    }

    #[test]
    fn strings_and_escapes_roundtrip() {
        let value = parse(br#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(value.as_str(), Some("a\"b\\c\ndA"));
        let rendered = Json::Str("quote\" slash\\ nl\n".to_string()).render();
        assert_eq!(
            parse(rendered.as_bytes()).unwrap().as_str(),
            Some("quote\" slash\\ nl\n")
        );
    }

    #[test]
    fn numbers_render_faithfully() {
        assert_eq!(Json::from(42u64).render(), "42");
        assert_eq!(Json::from(-1.5f64).render(), "-1.5");
        assert_eq!(Json::from(f64::NAN).render(), "null");
        let logits = [0.1f32, -2.75, 1e-7];
        for &l in &logits {
            let rendered = Json::from(f64::from(l)).render();
            let back = parse(rendered.as_bytes()).unwrap().as_f64().unwrap();
            assert_eq!(back as f32, l, "f32 logits survive the wire");
        }
    }

    #[test]
    fn object_builder_matches_parser() {
        let mut out = String::from("{");
        field(&mut out, "id", Json::from(7u64));
        field(&mut out, "name", Json::from("Cora/GCN".to_string()));
        field(&mut out, "worker", Json::Null);
        out.pop();
        out.push('}');
        let parsed = parse(out.as_bytes()).unwrap();
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(7));
        assert_eq!(parsed.get("name").unwrap().as_str(), Some("Cora/GCN"));
        assert_eq!(parsed.get("worker"), Some(&Json::Null));
    }
}
