//! Serving metrics: throughput, latency percentiles, per-bitwidth request
//! counts, batch/cache accounting, per-shard halo-exchange traffic, and
//! the analytic MEGA hardware-cost estimate. All counters are atomics;
//! the only lock is the read-mostly `RwLock` around the grow-on-demand
//! per-shard table, so worker lanes recording batches never serialize on
//! each other once a shard's slot exists.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use mega::sync::RwLock;

use crate::poison::LockRecoverExt;
use std::time::Duration;

use crate::shard::HwEstimate;
use crate::trace::Tracer;

/// Sub-bucket resolution bits of the log histogram (HdrHistogram-style).
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Exact buckets below `SUBS`, then 16 sub-buckets per power of two up to
/// `u64::MAX` microseconds.
const BUCKETS: usize = SUBS + (64 - SUB_BITS as usize) * SUBS;

/// A concurrent logarithmic histogram of microsecond values with ≤ ~6%
/// relative quantile error.
pub struct LogHistogram {
    counts: Vec<AtomicU64>,
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
        }
    }
}

fn bucket_of(us: u64) -> usize {
    if us < SUBS as u64 {
        us as usize
    } else {
        let exp = 63 - us.leading_zeros(); // >= SUB_BITS
        let group = (exp - SUB_BITS + 1) as usize;
        let sub = ((us >> (exp - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        group * SUBS + sub
    }
}

/// Upper bound (inclusive) of a bucket, in microseconds.
fn bucket_upper(index: usize) -> u64 {
    if index < SUBS {
        index as u64
    } else {
        let group = (index / SUBS) as u32;
        let sub = (index % SUBS) as u64;
        let width = 1u64 << (group - 1);
        // The top bucket's upper bound is exactly u64::MAX; adding before
        // subtracting would overflow, so saturate.
        (SUBS as u64 + sub)
            .saturating_mul(width)
            .saturating_add(width - 1)
    }
}

impl LogHistogram {
    /// Records one duration.
    pub fn record(&self, value: Duration) {
        let us = value.as_micros().min(u64::MAX as u128) as u64;
        self.counts[bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Sum of recorded values in microseconds (the Prometheus `_sum`
    /// series companion to [`LogHistogram::buckets`]).
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// `(upper_bound_us, count)` for every *non-empty* bucket, ascending.
    /// Counts are per-bucket (not cumulative); the Prometheus renderer
    /// accumulates them into `_bucket{le=...}` series. Skipping empty
    /// buckets is what keeps a 976-bucket histogram's exposition small.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(i, c)| {
            let count = c.load(Ordering::Relaxed);
            (count > 0).then(|| (bucket_upper(i), count))
        })
    }

    /// The `q`-quantile (`0 < q <= 1`) as a duration upper bound, or zero
    /// when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let target = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return Duration::from_micros(bucket_upper(i));
            }
        }
        Duration::from_micros(bucket_upper(BUCKETS - 1))
    }
}

/// Per-shard serving counters. Shards of different models sharing an index
/// aggregate into the same slot (the engine-wide view; per-model shard
/// state lives in the artifacts).
#[derive(Default)]
pub struct ShardStat {
    /// Requests answered from this shard's slice.
    pub requests: AtomicU64,
    /// Batches executed against this shard's slice.
    pub batches: AtomicU64,
    /// Receptive-field rows that resolved from halo copies (cross-shard
    /// reads on the batch path).
    pub halo_rows: AtomicU64,
    /// Halo rows re-fetched by update-driven halo exchanges.
    pub halo_fetches: AtomicU64,
    /// Slice rebuilds triggered by mutations.
    pub rebuilds: AtomicU64,
    /// Requests answered from this shard's logits cache (no forward pass).
    pub logits_hits: AtomicU64,
    /// Requests answered by a forward pass (logits-cache misses).
    pub logits_misses: AtomicU64,
    /// Logits-cache entries evicted under byte-budget pressure.
    pub logits_evictions: AtomicU64,
    /// Logits-cache entries dropped by delta-precise invalidation.
    pub logits_invalidations: AtomicU64,
    /// Estimated MEGA cycles across this shard's batches.
    pub est_cycles: AtomicU64,
    /// Estimated DRAM bytes across this shard's batches.
    pub est_dram_bytes: AtomicU64,
}

/// Per-worker-lane counters: utilization (busy time), item throughput,
/// and the live queue depth (items routed to the lane but not yet
/// dequeued — sampled by `/metrics` scrapes).
#[derive(Default)]
pub struct LaneStat {
    /// Cumulative time the lane spent processing items, microseconds.
    pub busy_us: AtomicU64,
    /// Work items the lane finished (batches + update tokens).
    pub items: AtomicU64,
    /// Items currently queued on the lane's channel (incremented at
    /// routing, decremented at dequeue).
    pub depth: AtomicU64,
    /// Cleared when the lane's thread exits (normal shutdown drain or a
    /// panic — `/healthz` distinguishes the two by whether the engine is
    /// shutting down).
    pub alive: AtomicBool,
}

/// Aggregate serving counters. All methods are safe to call concurrently
/// from every worker and the submitting thread.
#[derive(Default)]
pub struct Metrics {
    /// Requests accepted by the engine.
    pub submitted: AtomicU64,
    /// Requests answered.
    pub completed: AtomicU64,
    /// Batches executed.
    pub batches: AtomicU64,
    /// Sum of batch sizes (for average batch size).
    pub batched_requests: AtomicU64,
    /// Receptive-field rows materialized across all batches (compute proxy).
    pub rows_computed: AtomicU64,
    /// Batches flushed because they reached full size.
    pub size_flushes: AtomicU64,
    /// Batches flushed by the deadline sweeper.
    pub deadline_flushes: AtomicU64,
    /// Times the deadline-sweeper thread woke (to flush a due bucket or
    /// re-arm on a new deadline). Timer-driven sweeping makes this scale
    /// with *work*, not wall-clock: an idle engine records ~0/s where the
    /// old fixed-interval poll recorded ~2000/s.
    pub sweeper_wakeups: AtomicU64,
    /// Submit-to-response latency distribution.
    pub latency: LogHistogram,
    /// Per-batch execution time distribution.
    pub execution: LogHistogram,
    /// Requests served at each bitwidth (index = bits, 1..=8).
    pub per_bits: [AtomicU64; 9],
    /// Graph updates accepted by the engine.
    pub updates_submitted: AtomicU64,
    /// Graph updates applied.
    pub updates_applied: AtomicU64,
    /// Graph updates rejected (invalid delta or payload).
    pub updates_failed: AtomicU64,
    /// Nodes whose serving precision changed across all updates.
    pub nodes_retiered: AtomicU64,
    /// Adjacency rows incrementally refreshed across all updates (the
    /// mutation-cost proxy, mirroring `rows_computed` for inference).
    pub rows_refreshed: AtomicU64,
    /// Halo rows re-fetched across all halo exchanges.
    pub halo_fetches: AtomicU64,
    /// Receptive-field rows resolved from halo copies across all batches.
    pub halo_rows: AtomicU64,
    /// Requests answered from a logits cache across all shards. Together
    /// with `logits_misses` this partitions completed inference requests:
    /// every answered request is exactly one of the two.
    pub logits_hits: AtomicU64,
    /// Requests answered by a forward pass across all shards.
    pub logits_misses: AtomicU64,
    /// Logits-cache entries evicted under byte-budget pressure.
    pub logits_evictions: AtomicU64,
    /// Logits-cache entries dropped by delta-precise invalidation.
    pub logits_invalidations: AtomicU64,
    /// Estimated MEGA cycles across all batches (hardware-model feedback).
    pub est_cycles: AtomicU64,
    /// Estimated DRAM bytes across all batches.
    pub est_dram_bytes: AtomicU64,
    /// Per-shard counters, grown on demand behind a read-mostly lock.
    shards: RwLock<Vec<Arc<ShardStat>>>,
    /// Per-worker-lane counters, grown on demand like `shards`.
    lanes: RwLock<Vec<Arc<LaneStat>>>,
    /// The request-lifecycle tracing sink: per-stage histograms plus the
    /// flight recorder ([`crate::trace`]).
    pub trace: Tracer,
}

impl Metrics {
    /// Metrics with explicit flight-recorder knobs (the engine passes
    /// [`crate::ServeConfig::trace`] through here; `Metrics::default()`
    /// uses [`crate::TraceConfig::default`]).
    pub fn with_trace(config: &crate::trace::TraceConfig) -> Self {
        Self {
            trace: Tracer::new(config),
            ..Self::default()
        }
    }
}

impl Metrics {
    /// Records one answered request.
    pub fn record_response(&self, bits: u8, latency: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.latency.record(latency);
        self.per_bits[(bits as usize).min(8)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch.
    pub fn record_batch(&self, size: usize, rows: usize, execution: Duration) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests
            .fetch_add(size as u64, Ordering::Relaxed);
        self.rows_computed.fetch_add(rows as u64, Ordering::Relaxed);
        self.execution.record(execution);
    }

    /// Records one processed graph update.
    pub fn record_update(&self, applied: bool, retiered: usize, dirty_rows: usize) {
        if applied {
            self.updates_applied.fetch_add(1, Ordering::Relaxed);
            self.nodes_retiered
                .fetch_add(retiered as u64, Ordering::Relaxed);
            self.rows_refreshed
                .fetch_add(dirty_rows as u64, Ordering::Relaxed);
        } else {
            self.updates_failed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The counters of `shard`, growing the table on first sight. The
    /// common case (slot exists) takes only a read lock, so concurrent
    /// worker lanes do not serialize against each other.
    pub fn shard_stat(&self, shard: u32) -> Arc<ShardStat> {
        {
            let shards = self.shards.read().recover("shard-metrics");
            if let Some(stat) = shards.get(shard as usize) {
                return stat.clone();
            }
        }
        let mut shards = self.shards.write().recover("shard-metrics");
        while shards.len() <= shard as usize {
            shards.push(Arc::new(ShardStat::default()));
        }
        shards[shard as usize].clone()
    }

    /// The counters of worker lane `lane`, growing the table on first
    /// sight (same read-mostly pattern as [`Metrics::shard_stat`]).
    pub fn lane_stat(&self, lane: usize) -> Arc<LaneStat> {
        {
            let lanes = self.lanes.read().recover("lane-metrics");
            if let Some(stat) = lanes.get(lane) {
                return stat.clone();
            }
        }
        let mut lanes = self.lanes.write().recover("lane-metrics");
        while lanes.len() <= lane {
            lanes.push(Arc::new(LaneStat::default()));
        }
        lanes[lane].clone()
    }

    /// Snapshot of every lane's counters: `(busy_us, items, depth,
    /// alive)`, indexed by lane.
    pub fn lane_snapshot(&self) -> Vec<(u64, u64, u64, bool)> {
        self.lanes
            .read()
            .recover("lane-metrics")
            .iter()
            .map(|l| {
                (
                    l.busy_us.load(Ordering::Relaxed),
                    l.items.load(Ordering::Relaxed),
                    l.depth.load(Ordering::Relaxed),
                    l.alive.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Records one batch executed against a shard slice.
    pub fn record_shard_batch(&self, shard: u32, size: usize, halo_rows: usize, est: HwEstimate) {
        self.halo_rows
            .fetch_add(halo_rows as u64, Ordering::Relaxed);
        self.est_cycles.fetch_add(est.cycles, Ordering::Relaxed);
        self.est_dram_bytes
            .fetch_add(est.dram_bytes, Ordering::Relaxed);
        let stat = self.shard_stat(shard);
        stat.requests.fetch_add(size as u64, Ordering::Relaxed);
        stat.batches.fetch_add(1, Ordering::Relaxed);
        stat.halo_rows
            .fetch_add(halo_rows as u64, Ordering::Relaxed);
        stat.est_cycles.fetch_add(est.cycles, Ordering::Relaxed);
        stat.est_dram_bytes
            .fetch_add(est.dram_bytes, Ordering::Relaxed);
    }

    /// Records where one answered request's logits came from: the shard's
    /// logits cache (`hit`) or a forward pass. Called once per completed
    /// inference request, so hits + misses = completed and the hit rate is
    /// the fraction of traffic that skipped the forward pass entirely.
    pub fn record_logits_lookup(&self, shard: u32, hit: bool) {
        let stat = self.shard_stat(shard);
        if hit {
            self.logits_hits.fetch_add(1, Ordering::Relaxed);
            stat.logits_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.logits_misses.fetch_add(1, Ordering::Relaxed);
            stat.logits_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records logits-cache entries evicted by an insert (byte-budget
    /// pressure).
    pub fn record_logits_evictions(&self, shard: u32, evicted: usize) {
        if evicted == 0 {
            return;
        }
        self.logits_evictions
            .fetch_add(evicted as u64, Ordering::Relaxed);
        self.shard_stat(shard)
            .logits_evictions
            .fetch_add(evicted as u64, Ordering::Relaxed);
    }

    /// Records logits-cache entries dropped by one delta's precise
    /// invalidation on one shard.
    pub fn record_logits_invalidations(&self, shard: u32, invalidated: usize) {
        if invalidated == 0 {
            return;
        }
        self.logits_invalidations
            .fetch_add(invalidated as u64, Ordering::Relaxed);
        self.shard_stat(shard)
            .logits_invalidations
            .fetch_add(invalidated as u64, Ordering::Relaxed);
    }

    /// Records one shard's halo exchange after an applied update.
    pub fn record_shard_sync(&self, shard: u32, halo_fetched: usize, rebuilt: bool) {
        self.halo_fetches
            .fetch_add(halo_fetched as u64, Ordering::Relaxed);
        let stat = self.shard_stat(shard);
        stat.halo_fetches
            .fetch_add(halo_fetched as u64, Ordering::Relaxed);
        if rebuilt {
            stat.rebuilds.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Point-in-time summary. `elapsed` is the serving wall-clock window;
    /// cache counters come from the artifact cache.
    pub fn report(&self, elapsed: Duration, cache_hits: u64, cache_misses: u64) -> MetricsReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let lookups = cache_hits + cache_misses;
        MetricsReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed,
            throughput_rps: if elapsed.as_secs_f64() > 0.0 {
                completed as f64 / elapsed.as_secs_f64()
            } else {
                0.0
            },
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            exec_p50: self.execution.quantile(0.50),
            batches,
            avg_batch: if batches > 0 {
                self.batched_requests.load(Ordering::Relaxed) as f64 / batches as f64
            } else {
                0.0
            },
            rows_computed: self.rows_computed.load(Ordering::Relaxed),
            size_flushes: self.size_flushes.load(Ordering::Relaxed),
            deadline_flushes: self.deadline_flushes.load(Ordering::Relaxed),
            sweeper_wakeups: self.sweeper_wakeups.load(Ordering::Relaxed),
            per_bits: (1..=8)
                .map(|b| (b as u8, self.per_bits[b].load(Ordering::Relaxed)))
                .filter(|&(_, n)| n > 0)
                .collect(),
            updates_submitted: self.updates_submitted.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            updates_failed: self.updates_failed.load(Ordering::Relaxed),
            nodes_retiered: self.nodes_retiered.load(Ordering::Relaxed),
            rows_refreshed: self.rows_refreshed.load(Ordering::Relaxed),
            halo_fetches: self.halo_fetches.load(Ordering::Relaxed),
            halo_rows: self.halo_rows.load(Ordering::Relaxed),
            logits_hits: self.logits_hits.load(Ordering::Relaxed),
            logits_misses: self.logits_misses.load(Ordering::Relaxed),
            logits_hit_rate: {
                let hits = self.logits_hits.load(Ordering::Relaxed);
                let lookups = hits + self.logits_misses.load(Ordering::Relaxed);
                if lookups > 0 {
                    hits as f64 / lookups as f64
                } else {
                    0.0
                }
            },
            logits_evictions: self.logits_evictions.load(Ordering::Relaxed),
            logits_invalidations: self.logits_invalidations.load(Ordering::Relaxed),
            est_cycles: self.est_cycles.load(Ordering::Relaxed),
            est_dram_bytes: self.est_dram_bytes.load(Ordering::Relaxed),
            shards: self
                .shards
                .read()
                .recover("shard-metrics")
                .iter()
                .enumerate()
                .map(|(i, s)| ShardReport {
                    shard: i as u32,
                    requests: s.requests.load(Ordering::Relaxed),
                    batches: s.batches.load(Ordering::Relaxed),
                    halo_rows: s.halo_rows.load(Ordering::Relaxed),
                    halo_fetches: s.halo_fetches.load(Ordering::Relaxed),
                    rebuilds: s.rebuilds.load(Ordering::Relaxed),
                    logits_hits: s.logits_hits.load(Ordering::Relaxed),
                    logits_misses: s.logits_misses.load(Ordering::Relaxed),
                    logits_evictions: s.logits_evictions.load(Ordering::Relaxed),
                    logits_invalidations: s.logits_invalidations.load(Ordering::Relaxed),
                    est_cycles: s.est_cycles.load(Ordering::Relaxed),
                    est_dram_bytes: s.est_dram_bytes.load(Ordering::Relaxed),
                })
                .collect(),
            cache_hits,
            cache_misses,
            cache_hit_rate: if lookups > 0 {
                cache_hits as f64 / lookups as f64
            } else {
                0.0
            },
        }
    }
}

/// Point-in-time per-shard counters inside a [`MetricsReport`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: u32,
    /// Requests answered from this shard's slice.
    pub requests: u64,
    /// Batches executed against this shard's slice.
    pub batches: u64,
    /// Receptive-field rows resolved from halo copies.
    pub halo_rows: u64,
    /// Halo rows re-fetched by halo exchanges.
    pub halo_fetches: u64,
    /// Slice rebuilds under mutation.
    pub rebuilds: u64,
    /// Requests answered from this shard's logits cache.
    pub logits_hits: u64,
    /// Requests answered by a forward pass on this shard.
    pub logits_misses: u64,
    /// Logits-cache entries evicted under byte pressure.
    pub logits_evictions: u64,
    /// Logits-cache entries dropped by delta invalidation.
    pub logits_invalidations: u64,
    /// Estimated MEGA cycles over this shard's batches.
    pub est_cycles: u64,
    /// Estimated DRAM bytes over this shard's batches.
    pub est_dram_bytes: u64,
}

/// A rendered snapshot of [`Metrics`].
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Requests accepted.
    pub submitted: u64,
    /// Requests answered.
    pub completed: u64,
    /// Answered requests per second over the measurement window.
    pub throughput_rps: f64,
    /// Median submit-to-response latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Median batch execution time.
    pub exec_p50: Duration,
    /// Batches executed.
    pub batches: u64,
    /// Mean requests per batch.
    pub avg_batch: f64,
    /// Receptive-field rows materialized (compute proxy).
    pub rows_computed: u64,
    /// Batches flushed at full size.
    pub size_flushes: u64,
    /// Batches flushed by deadline.
    pub deadline_flushes: u64,
    /// Deadline-sweeper thread wakeups (see
    /// [`Metrics::sweeper_wakeups`]).
    pub sweeper_wakeups: u64,
    /// `(bits, requests)` pairs for every served bitwidth.
    pub per_bits: Vec<(u8, u64)>,
    /// Graph updates accepted.
    pub updates_submitted: u64,
    /// Graph updates applied.
    pub updates_applied: u64,
    /// Graph updates rejected.
    pub updates_failed: u64,
    /// Nodes whose serving precision changed.
    pub nodes_retiered: u64,
    /// Adjacency rows incrementally refreshed by updates.
    pub rows_refreshed: u64,
    /// Halo rows re-fetched across shards by update-driven exchanges.
    pub halo_fetches: u64,
    /// Receptive-field rows resolved from halo copies across batches.
    pub halo_rows: u64,
    /// Requests answered from a logits cache (no forward pass).
    pub logits_hits: u64,
    /// Requests answered by a forward pass.
    pub logits_misses: u64,
    /// `logits_hits` over all answered lookups (0.0 when none).
    pub logits_hit_rate: f64,
    /// Logits-cache entries evicted under byte pressure.
    pub logits_evictions: u64,
    /// Logits-cache entries dropped by delta-precise invalidation.
    pub logits_invalidations: u64,
    /// Estimated MEGA cycles across all batches.
    pub est_cycles: u64,
    /// Estimated DRAM bytes across all batches.
    pub est_dram_bytes: u64,
    /// Per-shard breakdown.
    pub shards: Vec<ShardReport>,
    /// Artifact-cache hits.
    pub cache_hits: u64,
    /// Artifact-cache misses (builds).
    pub cache_misses: u64,
    /// Hits over lookups.
    pub cache_hit_rate: f64,
}

impl std::fmt::Display for MetricsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests    {:>10} completed / {} submitted",
            self.completed, self.submitted
        )?;
        writeln!(f, "throughput  {:>10.0} req/s", self.throughput_rps)?;
        writeln!(
            f,
            "latency     p50 {:>8.3?}   p95 {:>8.3?}   p99 {:>8.3?}",
            self.p50, self.p95, self.p99
        )?;
        writeln!(
            f,
            "batches     {:>10} (avg {:.1} req/batch, exec p50 {:.3?}, {} size / {} deadline flushes)",
            self.batches, self.avg_batch, self.exec_p50, self.size_flushes, self.deadline_flushes
        )?;
        writeln!(
            f,
            "sweeper     {:>10} wakeups (timer-driven: scales with deadlines, not wall-clock)",
            self.sweeper_wakeups
        )?;
        writeln!(
            f,
            "rows        {:>10} receptive-field rows",
            self.rows_computed
        )?;
        write!(f, "bits       ")?;
        for (bits, n) in &self.per_bits {
            write!(f, "  {bits}b:{n}")?;
        }
        writeln!(f)?;
        if self.updates_submitted > 0 {
            writeln!(
                f,
                "updates     {:>10} applied / {} submitted ({} rejected, {} nodes retiered, {} adjacency rows refreshed)",
                self.updates_applied,
                self.updates_submitted,
                self.updates_failed,
                self.nodes_retiered,
                self.rows_refreshed
            )?;
        }
        writeln!(
            f,
            "hw model    {:>10} est MEGA cycles / {} est DRAM bytes across batches",
            self.est_cycles, self.est_dram_bytes
        )?;
        writeln!(
            f,
            "halo        {:>10} cross-shard rows read, {} halo rows exchanged",
            self.halo_rows, self.halo_fetches
        )?;
        writeln!(
            f,
            "logits      {:>10.1}% hit rate ({} hits / {} misses, {} evicted, {} invalidated)",
            self.logits_hit_rate * 100.0,
            self.logits_hits,
            self.logits_misses,
            self.logits_evictions,
            self.logits_invalidations
        )?;
        for s in &self.shards {
            writeln!(
                f,
                "shard {:<5} {:>10} req / {} batches, {} halo rows, {} fetched, {} rebuilds, \
                 logits {}h/{}m/{}e/{}i, est {} cyc / {} B",
                s.shard,
                s.requests,
                s.batches,
                s.halo_rows,
                s.halo_fetches,
                s.rebuilds,
                s.logits_hits,
                s.logits_misses,
                s.logits_evictions,
                s.logits_invalidations,
                s.est_cycles,
                s.est_dram_bytes
            )?;
        }
        write!(
            f,
            "cache       {:>10.1}% hit rate ({} hits / {} misses)",
            self.cache_hit_rate * 100.0,
            self.cache_hits,
            self.cache_misses
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_and_cover_u64() {
        let mut last = None;
        for us in [0u64, 1, 15, 16, 17, 100, 1_000, 65_535, 1 << 30, u64::MAX] {
            let b = bucket_of(us);
            assert!(b < BUCKETS, "bucket {b} out of range for {us}");
            assert!(bucket_upper(b) >= us, "upper({b}) < {us}");
            if let Some((prev_us, prev_b)) = last {
                assert!(b >= prev_b, "bucket not monotone: {prev_us}->{us}");
            }
            last = Some((us, b));
        }
    }

    #[test]
    fn bucket_upper_bounds_are_tight() {
        // Relative error of the upper bound stays within one sub-bucket.
        for us in [20u64, 333, 4_096, 100_000, 9_999_999] {
            let upper = bucket_upper(bucket_of(us));
            assert!(upper >= us);
            assert!(
                (upper - us) as f64 / us as f64 <= 1.0 / 16.0 + 1e-9,
                "error too large at {us}: upper {upper}"
            );
        }
    }

    /// Satellite coverage: `bucket_of`/`bucket_upper` round-trip exactly
    /// at the seams the encoding has — the exact-value range below
    /// `SUBS`, the first log group, every power-of-two boundary, and the
    /// saturating top bucket at `u64::MAX`.
    #[test]
    fn bucket_round_trips_at_boundaries() {
        // Exact range: every value below SUBS is its own bucket and its
        // own (tight) upper bound.
        for us in 0..SUBS as u64 {
            assert_eq!(bucket_of(us), us as usize);
            assert_eq!(bucket_upper(us as usize), us);
        }
        // The sub-bucket/group seam: SUBS-1 is the last exact bucket,
        // SUBS opens group 1 (width 1, still exact).
        assert_eq!(bucket_of(SUBS as u64 - 1), SUBS - 1);
        assert_eq!(bucket_of(SUBS as u64), SUBS);
        assert_eq!(bucket_upper(SUBS), SUBS as u64);
        // Every index's upper bound maps back into the same index, and
        // upper+1 opens the next bucket (round-trip at the boundary).
        for index in 0..BUCKETS - 1 {
            let upper = bucket_upper(index);
            assert_eq!(
                bucket_of(upper),
                index,
                "upper({index}) not in its own bucket"
            );
            assert_eq!(
                bucket_of(upper + 1),
                index + 1,
                "upper({index})+1 not in the next bucket"
            );
        }
        // Power-of-two boundaries land on a fresh sub-bucket (sub = 0).
        for exp in SUB_BITS..63 {
            let us = 1u64 << exp;
            assert_eq!(bucket_of(us) % SUBS, 0, "2^{exp} should open a sub-run");
            assert_eq!(bucket_of(us - 1), bucket_of(us) - 1);
        }
        // The top bucket saturates at exactly u64::MAX.
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_iteration_exposes_nonempty_buckets_in_order() {
        let h = LogHistogram::default();
        assert_eq!(h.buckets().count(), 0, "empty histogram exposes nothing");
        for us in [3u64, 3, 17, 100_000] {
            h.record(Duration::from_micros(us));
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert_eq!(buckets.len(), 3, "duplicates share a bucket");
        assert!(
            buckets.windows(2).all(|w| w[0].0 < w[1].0),
            "upper bounds ascend"
        );
        assert_eq!(buckets[0], (3, 2));
        assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), h.count());
        assert_eq!(h.sum_us(), 3 + 3 + 17 + 100_000);
        // Every reported upper bound re-buckets to the bucket it labels.
        for &(upper, _) in &buckets {
            assert_eq!(bucket_upper(bucket_of(upper)), upper);
        }
    }

    #[test]
    fn lane_stats_grow_on_demand() {
        let m = Metrics::default();
        assert!(m.lane_snapshot().is_empty());
        m.lane_stat(2).busy_us.fetch_add(500, Ordering::Relaxed);
        m.lane_stat(2).alive.store(true, Ordering::Relaxed);
        m.lane_stat(0).items.fetch_add(1, Ordering::Relaxed);
        let snapshot = m.lane_snapshot();
        assert_eq!(snapshot.len(), 3, "table grew to the highest lane");
        assert_eq!(snapshot[0], (0, 1, 0, false));
        assert_eq!(snapshot[2], (500, 0, 0, true));
    }

    #[test]
    fn quantiles_track_recorded_values() {
        let h = LogHistogram::default();
        for ms in 1..=100u64 {
            h.record(Duration::from_millis(ms));
        }
        let p50 = h.quantile(0.50).as_millis() as f64;
        let p99 = h.quantile(0.99).as_millis() as f64;
        assert!((45.0..=56.0).contains(&p50), "p50 {p50}");
        assert!((90.0..=107.0).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= h.quantile(0.5));
    }

    #[test]
    fn report_aggregates_counters() {
        let m = Metrics::default();
        m.submitted.fetch_add(4, Ordering::Relaxed);
        m.record_response(2, Duration::from_millis(1));
        m.record_response(2, Duration::from_millis(2));
        m.record_response(6, Duration::from_millis(3));
        m.record_batch(3, 120, Duration::from_millis(2));
        let r = m.report(Duration::from_secs(1), 3, 1);
        assert_eq!(r.completed, 3);
        assert_eq!(r.per_bits, vec![(2, 2), (6, 1)]);
        assert!((r.throughput_rps - 3.0).abs() < 1e-9);
        assert!((r.cache_hit_rate - 0.75).abs() < 1e-9);
        assert_eq!(r.rows_computed, 120);
        assert!(!format!("{r}").is_empty());
    }
}
