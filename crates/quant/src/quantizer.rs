//! The scalar quantizer of Eq. (2): symmetric, scale `α`, bitwidth `b`.
//!
//! ```text
//! x̄ = sign(x) · { ⌊|x|/α + 0.5⌋   if |x| <  α·(2^{b-1}−1)
//!               { 2^{b-1}−1       if |x| ≥  α·(2^{b-1}−1)
//! ```
//!
//! with the 1-bit special case `Q(1) = 1` (values `{−α, 0, +α}`) so binary
//! bag-of-words inputs can be stored at 1 bit — this is what lets the paper
//! report average bitwidths below 2 (e.g. 1.70 on Cora GCN).

/// Largest magnitude level representable at `bits` — `2^{b−1} − 1`, with the
/// 1-bit special case `Q(1) = 1`.
///
/// # Panics
///
/// Panics if `bits == 0` or `bits > 16`.
pub fn qmax(bits: u8) -> i32 {
    assert!((1..=16).contains(&bits), "bitwidth {bits} out of range");
    if bits == 1 {
        1
    } else {
        (1i32 << (bits - 1)) - 1
    }
}

/// Quantizes one value to an integer level in `[-qmax, qmax]` per Eq. (2).
///
/// # Panics
///
/// Panics if `alpha` is not positive and finite.
pub fn quantize(x: f32, alpha: f32, bits: u8) -> i32 {
    assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
    let q = qmax(bits);
    let level = (x.abs() / alpha + 0.5).floor() as i64;
    let level = level.min(q as i64) as i32;
    if x < 0.0 {
        -level
    } else {
        level
    }
}

/// Reconstructs the real value of a quantization level.
pub fn dequantize(level: i32, alpha: f32) -> f32 {
    level as f32 * alpha
}

/// Quantize-then-dequantize ("fake quantization" as used inside QAT).
pub fn fake_quantize(x: f32, alpha: f32, bits: u8) -> f32 {
    dequantize(quantize(x, alpha, bits), alpha)
}

/// `true` if `x` lies strictly inside the representable range (not clipped).
pub fn in_range(x: f32, alpha: f32, bits: u8) -> bool {
    x.abs() < alpha * (qmax(bits) as f32)
}

/// Mean squared quantization error of a slice under `(alpha, bits)` —
/// used by input calibration to pick minimal bitwidths.
pub fn mse(values: &[f32], alpha: f32, bits: u8) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values
        .iter()
        .map(|&x| {
            let e = (x - fake_quantize(x, alpha, bits)) as f64;
            e * e
        })
        .sum::<f64>()
        / values.len() as f64
}

/// LSQ-style initial scale for a tensor: `2·mean(|x|) / sqrt(qmax)`.
/// Returns a small positive floor when the tensor is all-zero.
pub fn lsq_init_scale(values: impl Iterator<Item = f32>, bits: u8) -> f32 {
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for v in values {
        sum += v.abs() as f64;
        count += 1;
    }
    if count == 0 || sum == 0.0 {
        return 1e-3;
    }
    let mean = sum / count as f64;
    ((2.0 * mean) / (qmax(bits) as f64).sqrt()).max(1e-6) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qmax_follows_two_complement_range() {
        assert_eq!(qmax(1), 1);
        assert_eq!(qmax(2), 1);
        assert_eq!(qmax(4), 7);
        assert_eq!(qmax(8), 127);
    }

    #[test]
    fn quantization_rounds_to_nearest_level() {
        assert_eq!(quantize(0.0, 1.0, 4), 0);
        assert_eq!(quantize(0.49, 1.0, 4), 0);
        assert_eq!(quantize(0.5, 1.0, 4), 1);
        assert_eq!(quantize(1.49, 1.0, 4), 1);
        assert_eq!(quantize(-2.6, 1.0, 4), -3);
    }

    #[test]
    fn saturation_clamps_to_qmax() {
        assert_eq!(quantize(100.0, 1.0, 4), 7);
        assert_eq!(quantize(-100.0, 1.0, 4), -7);
        assert_eq!(quantize(1e30, 0.5, 8), 127);
    }

    #[test]
    fn error_bounded_by_half_alpha_in_range() {
        let alpha = 0.37;
        for i in -50..50 {
            let x = i as f32 * 0.05;
            if in_range(x, alpha, 6) {
                let err = (x - fake_quantize(x, alpha, 6)).abs();
                assert!(err <= alpha / 2.0 + 1e-6, "x={x} err={err}");
            }
        }
    }

    #[test]
    fn one_bit_represents_sign() {
        assert_eq!(quantize(0.9, 1.0, 1), 1);
        assert_eq!(quantize(-0.9, 1.0, 1), -1);
        assert_eq!(quantize(0.2, 1.0, 1), 0);
        // Binary bag-of-words at alpha=1: exact.
        assert_eq!(fake_quantize(1.0, 1.0, 1), 1.0);
        assert_eq!(fake_quantize(0.0, 1.0, 1), 0.0);
    }

    #[test]
    fn mse_decreases_with_bitwidth() {
        let values: Vec<f32> = (0..200).map(|i| (i as f32 * 0.01).sin()).collect();
        let mut prev = f64::INFINITY;
        for bits in [2u8, 3, 4, 6, 8] {
            let alpha = 1.0 / qmax(bits) as f32;
            let e = mse(&values, alpha, bits);
            assert!(e <= prev + 1e-9, "bits {bits}: {e} > {prev}");
            prev = e;
        }
    }

    #[test]
    fn lsq_init_is_positive_and_scales_with_magnitude() {
        let small = lsq_init_scale([0.1f32, -0.1, 0.2].into_iter(), 4);
        let large = lsq_init_scale([1.0f32, -1.0, 2.0].into_iter(), 4);
        assert!(small > 0.0 && large > 10.0 * small * 0.5);
        assert!(lsq_init_scale(std::iter::empty(), 4) > 0.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn non_positive_alpha_panics() {
        let _ = quantize(1.0, 0.0, 4);
    }
}
