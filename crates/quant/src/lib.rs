//! Degree-Aware mixed-precision quantization (the paper's §IV) and the
//! Degree-Quant (DQ) baseline.
//!
//! The core observation reproduced here: nodes with higher in-degree have
//! larger aggregated feature values (Fig. 3) and are rarer (power-law), so a
//! single shared bitwidth either wastes storage on the many unimportant
//! nodes or clips the few important ones. Degree-Aware quantization learns a
//! `(scale αᵈ, bitwidth bᵈ)` pair *per in-degree group* jointly with the
//! model weights, under a memory-size penalty (Eq. 4/5) that pushes average
//! bitwidth toward a target.
//!
//! Components:
//!
//! * [`quantizer`] — the scalar quantizer of Eq. (2) and its error bounds;
//! * [`grouping`] — in-degree → parameter-group mapping;
//! * [`ops`] — custom autograd ops: straight-through/LSQ gradients for
//!   features and weights, and the analytic memory-penalty gradient;
//! * [`hooks`] — [`DegreeAwareHook`] and [`DqHook`] plugging into
//!   `mega_gnn::ForwardHook`;
//! * [`input`] — offline calibration of the (constant) input feature map;
//! * [`qat`] — the quantization-aware training loop;
//! * [`report`] — average-bitwidth / compression-ratio accounting and the
//!   per-node [`BitAssignment`] consumed by the accelerator simulators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod grouping;
pub mod hooks;
pub mod input;
pub mod ops;
pub mod policy;
pub mod qat;
pub mod quantizer;
pub mod report;

pub use grouping::DegreeGrouping;
pub use hooks::{DegreeAwareHook, DqHook};
pub use input::InputQuant;
pub use policy::{DegreePolicy, PolicyError};
pub use qat::{QatConfig, QatOutcome, QatTrainer};
pub use report::{average_bits, compression_ratio, BitAssignment};
