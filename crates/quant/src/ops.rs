//! Custom autograd operations implementing the quantizer gradients.
//!
//! * [`FeatureQuantOp`] — per-degree-group fake quantization of an
//!   activation map. Gradients: straight-through to the activations (zero
//!   where clipped), LSQ to the scales, clip-boundary to the bitwidths.
//! * [`WeightQuantOp`] — per-column 4-bit fake quantization of a weight
//!   matrix with LSQ scale gradients (paper §IV: "we quantize W to the same
//!   bitwidth of 4 bits ... each column of W is endowed with its individual
//!   learnable quantization scale").
//! * [`MemoryLossOp`] — the memory penalty of Eq. (4) with its analytic
//!   gradient with respect to every layer's bitwidth table.

use std::rc::Rc;

use mega_tensor::{CustomGrad, Matrix};

use crate::quantizer::qmax;

/// Clamp range for learnable feature bitwidths.
pub const FEATURE_BITS_RANGE: (f32, f32) = (1.0, 8.0);

/// Effective integer bitwidth of a continuous parameter (round + clamp).
pub fn effective_bits(b: f32) -> u8 {
    b.round().clamp(FEATURE_BITS_RANGE.0, FEATURE_BITS_RANGE.1) as u8
}

/// Effective positive scale of a learnable scale parameter.
pub fn effective_scale(s: f32) -> f32 {
    s.abs().max(1e-8)
}

/// Forward fake-quantization of a feature map with per-group parameters.
///
/// `groups[v]` selects the `(scale, bits)` column for node `v`'s row.
pub fn feature_quant_forward(h: &Matrix, scales: &Matrix, bits: &Matrix, groups: &[u32]) -> Matrix {
    assert_eq!(h.rows(), groups.len(), "group map length mismatch");
    let mut out = h.clone();
    for (v, &group) in groups.iter().enumerate() {
        let d = group as usize;
        let alpha = effective_scale(scales.get(0, d));
        let b = effective_bits(bits.get(0, d));
        let q = qmax(b) as f32;
        for x in out.row_mut(v) {
            let level = (x.abs() / alpha + 0.5).floor().min(q);
            *x = level * alpha * x.signum();
        }
    }
    out
}

/// Degree-grouped feature quantization (see module docs).
#[derive(Debug)]
pub struct FeatureQuantOp {
    /// Node → parameter-group map.
    pub groups: Rc<Vec<u32>>,
    /// Number of parameter groups (columns of the scale/bits inputs).
    pub num_groups: usize,
}

impl CustomGrad for FeatureQuantOp {
    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        out_grad: &Matrix,
    ) -> Vec<Option<Matrix>> {
        let (h, scales, bits) = (inputs[0], inputs[1], inputs[2]);
        let f = h.cols();
        let mut gh = Matrix::zeros(h.rows(), f);
        let mut gs = Matrix::zeros(1, self.num_groups);
        let mut gb = Matrix::zeros(1, self.num_groups);
        // Elements contributing per group, for gradient normalization.
        let mut group_elems = vec![0usize; self.num_groups];
        for &g in self.groups.iter() {
            group_elems[g as usize] += f;
        }
        for v in 0..h.rows() {
            let d = self.groups[v] as usize;
            let alpha = effective_scale(scales.get(0, d));
            let b_cont = bits.get(0, d);
            let b = effective_bits(b_cont);
            let q = qmax(b) as f32;
            // LSQ gradient scale: 1/sqrt(N_d · Q).
            let s_norm = 1.0 / ((group_elems[d] as f32 * q).sqrt().max(1.0));
            let b_norm = 1.0 / (group_elems[d] as f32).max(1.0);
            let sign_s = scales.get(0, d).signum();
            for (c, (&x, &g)) in h.row(v).iter().zip(out_grad.row(v)).enumerate() {
                let ratio = x.abs() / alpha;
                if ratio < q {
                    // In range: STE for h, rounding-residual for the scale.
                    gh.set(v, c, g);
                    let level = (ratio + 0.5).floor();
                    let ds = (level - ratio) * x.signum();
                    gs.set(0, d, gs.get(0, d) + g * ds * s_norm * sign_s);
                } else {
                    // Clipped: no activation gradient; scale sees ±Q; the
                    // bitwidth sees the clip boundary moving, d(αQ(b))/db =
                    // α·ln2·2^{b−1} (zero at the clamp edges, STE on round).
                    let ds = q * x.signum();
                    gs.set(0, d, gs.get(0, d) + g * ds * s_norm * sign_s);
                    if b_cont > FEATURE_BITS_RANGE.0 && b_cont < FEATURE_BITS_RANGE.1 {
                        let dq_db = alpha * std::f32::consts::LN_2 * (2.0f32).powi(b as i32 - 1);
                        gb.set(0, d, gb.get(0, d) + g * dq_db * x.signum() * b_norm);
                    }
                }
            }
        }
        vec![Some(gh), Some(gs), Some(gb)]
    }
}

/// Forward fake-quantization of a weight matrix with per-column scales at a
/// fixed bitwidth.
pub fn weight_quant_forward(w: &Matrix, scales: &Matrix, bits: u8) -> Matrix {
    let q = qmax(bits) as f32;
    let mut out = w.clone();
    for r in 0..w.rows() {
        for c in 0..w.cols() {
            let alpha = effective_scale(scales.get(0, c));
            let x = w.get(r, c);
            let level = (x.abs() / alpha + 0.5).floor().min(q);
            out.set(r, c, level * alpha * x.signum());
        }
    }
    out
}

/// Per-column weight quantization at a fixed bitwidth (default 4).
#[derive(Debug)]
pub struct WeightQuantOp {
    /// Fixed bitwidth (the paper uses 4 for all weights).
    pub bits: u8,
}

impl CustomGrad for WeightQuantOp {
    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        out_grad: &Matrix,
    ) -> Vec<Option<Matrix>> {
        let (w, scales) = (inputs[0], inputs[1]);
        let q = qmax(self.bits) as f32;
        let mut gw = Matrix::zeros(w.rows(), w.cols());
        let mut gs = Matrix::zeros(1, w.cols());
        let s_norm = 1.0 / ((w.rows() as f32 * q).sqrt().max(1.0));
        for r in 0..w.rows() {
            for c in 0..w.cols() {
                let alpha = effective_scale(scales.get(0, c));
                let sign_s = scales.get(0, c).signum();
                let x = w.get(r, c);
                let g = out_grad.get(r, c);
                let ratio = x.abs() / alpha;
                let ds = if ratio < q {
                    gw.set(r, c, g);
                    let level = (ratio + 0.5).floor();
                    (level - ratio) * x.signum()
                } else {
                    q * x.signum()
                };
                gs.set(0, c, gs.get(0, c) + g * ds * s_norm * sign_s);
            }
        }
        vec![Some(gw), Some(gs)]
    }
}

/// The memory penalty of Eq. (4):
/// `L_mem = (S/η − M_target)²` with
/// `S = Σ_l Σ_i dim_l · b_i^l` (bits) plus a constant term for statically
/// quantized layers (the calibrated input features).
#[derive(Debug)]
pub struct MemoryLossOp {
    /// Feature dimension of each learnable layer (same order as inputs).
    pub layer_dims: Vec<f64>,
    /// Per layer: node count per parameter group.
    pub group_counts: Vec<Vec<f64>>,
    /// Constant contribution in bits (e.g. the calibrated input layer).
    pub constant_bits: f64,
    /// Unit conversion η (paper: 8·1024, bits → KB).
    pub eta: f64,
    /// Target memory in KB.
    pub m_target: f64,
}

impl MemoryLossOp {
    /// Computes the forward value from the current bitwidth tables.
    pub fn forward(&self, bit_tables: &[&Matrix]) -> Matrix {
        let deviation = self.deviation(bit_tables);
        Matrix::from_vec(1, 1, vec![(deviation * deviation) as f32])
    }

    /// Current model size in KB implied by the bitwidth tables.
    pub fn size_kb(&self, bit_tables: &[&Matrix]) -> f64 {
        let mut total_bits = self.constant_bits;
        for (l, table) in bit_tables.iter().enumerate() {
            for d in 0..table.cols() {
                let b = table
                    .get(0, d)
                    .clamp(FEATURE_BITS_RANGE.0, FEATURE_BITS_RANGE.1)
                    as f64;
                total_bits += self.layer_dims[l] * self.group_counts[l][d] * b;
            }
        }
        total_bits / self.eta
    }

    fn deviation(&self, bit_tables: &[&Matrix]) -> f64 {
        self.size_kb(bit_tables) - self.m_target
    }
}

impl CustomGrad for MemoryLossOp {
    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        out_grad: &Matrix,
    ) -> Vec<Option<Matrix>> {
        let deviation = self.deviation(inputs);
        let upstream = out_grad.get(0, 0) as f64;
        let mut grads = Vec::with_capacity(inputs.len());
        for (l, table) in inputs.iter().enumerate() {
            let mut g = Matrix::zeros(1, table.cols());
            for d in 0..table.cols() {
                let b = table.get(0, d);
                // Clamp acts as a hard stop (zero gradient outside).
                if b > FEATURE_BITS_RANGE.0 && b < FEATURE_BITS_RANGE.1 {
                    let dv =
                        2.0 * deviation * self.layer_dims[l] * self.group_counts[l][d] / self.eta;
                    g.set(0, d, (dv * upstream) as f32);
                }
            }
            grads.push(Some(g));
        }
        grads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_forward_applies_group_parameters() {
        let h = Matrix::from_rows(&[&[0.9, -2.6], &[0.9, -2.6]]);
        let scales = Matrix::from_rows(&[&[1.0, 0.5]]);
        let bits = Matrix::from_rows(&[&[2.0, 8.0]]);
        let groups = vec![0u32, 1u32];
        let out = feature_quant_forward(&h, &scales, &bits, &groups);
        // Node 0: alpha=1, b=2 (Q=1): 0.9 -> 1.0 ; -2.6 clamps to -1.0.
        assert_eq!(out.row(0), &[1.0, -1.0]);
        // Node 1: alpha=0.5, b=8: 0.9 -> 1.0 ; -2.6 -> -2.5.
        assert_eq!(out.row(1), &[1.0, -2.5]);
    }

    #[test]
    fn feature_backward_ste_masks_clipped() {
        let h = Matrix::from_rows(&[&[0.4, 5.0]]);
        let scales = Matrix::from_rows(&[&[1.0]]);
        let bits = Matrix::from_rows(&[&[2.0]]);
        let op = FeatureQuantOp {
            groups: Rc::new(vec![0]),
            num_groups: 1,
        };
        let out = feature_quant_forward(&h, &scales, &bits, &[0]);
        let gout = Matrix::from_rows(&[&[1.0, 1.0]]);
        let grads = op.backward(&[&h, &scales, &bits], &out, &gout);
        let gh = grads[0].as_ref().unwrap();
        assert_eq!(gh.get(0, 0), 1.0, "in-range passes through");
        assert_eq!(gh.get(0, 1), 0.0, "clipped is masked");
        // Clipped element pushes bitwidth up (positive gradient direction
        // increases representable range; loss gradient may flip sign).
        let gb = grads[2].as_ref().unwrap();
        assert!(gb.get(0, 0) > 0.0);
    }

    #[test]
    fn weight_quant_is_per_column() {
        let w = Matrix::from_rows(&[&[0.9, 0.9]]);
        let scales = Matrix::from_rows(&[&[1.0, 0.1]]);
        let out = weight_quant_forward(&w, &scales, 4);
        assert_eq!(out.get(0, 0), 1.0);
        assert!((out.get(0, 1) - 0.7).abs() < 1e-6); // clamps at 7 * 0.1
    }

    #[test]
    fn weight_backward_shapes_and_ste() {
        let w = Matrix::from_rows(&[&[0.2], &[100.0]]);
        let scales = Matrix::from_rows(&[&[1.0]]);
        let op = WeightQuantOp { bits: 4 };
        let out = weight_quant_forward(&w, &scales, 4);
        let gout = Matrix::full(2, 1, 1.0);
        let grads = op.backward(&[&w, &scales], &out, &gout);
        let gw = grads[0].as_ref().unwrap();
        assert_eq!(gw.get(0, 0), 1.0);
        assert_eq!(gw.get(1, 0), 0.0);
        assert!(grads[1].as_ref().unwrap().get(0, 0) != 0.0);
    }

    #[test]
    fn memory_loss_zero_at_target() {
        let op = MemoryLossOp {
            layer_dims: vec![128.0],
            group_counts: vec![vec![10.0, 20.0]],
            constant_bits: 0.0,
            eta: 8.0 * 1024.0,
            m_target: 128.0 * (10.0 * 4.0 + 20.0 * 4.0) / (8.0 * 1024.0),
        };
        let bits = Matrix::from_rows(&[&[4.0, 4.0]]);
        let loss = op.forward(&[&bits]);
        assert!(loss.get(0, 0).abs() < 1e-9);
    }

    #[test]
    fn memory_gradient_points_toward_target() {
        let op = MemoryLossOp {
            layer_dims: vec![100.0],
            group_counts: vec![vec![50.0]],
            constant_bits: 0.0,
            eta: 8.0 * 1024.0,
            m_target: 100.0 * 50.0 * 2.0 / (8.0 * 1024.0), // target = 2 bits
        };
        let bits = Matrix::from_rows(&[&[6.0]]); // above target
        let out = op.forward(&[&bits]);
        assert!(out.get(0, 0) > 0.0);
        let gout = Matrix::from_vec(1, 1, vec![1.0]);
        let grads = op.backward(&[&bits], &out, &gout);
        let g = grads[0].as_ref().unwrap().get(0, 0);
        assert!(g > 0.0, "gradient must push bits down (positive grad)");
        // Below target: gradient flips.
        let bits_low = Matrix::from_rows(&[&[1.5]]);
        let out = op.forward(&[&bits_low]);
        let grads = op.backward(&[&bits_low], &out, &gout);
        assert!(grads[0].as_ref().unwrap().get(0, 0) < 0.0);
    }

    #[test]
    fn memory_gradient_matches_finite_difference() {
        let op = MemoryLossOp {
            layer_dims: vec![64.0, 128.0],
            group_counts: vec![vec![5.0, 7.0], vec![5.0, 7.0]],
            constant_bits: 1000.0,
            eta: 8.0 * 1024.0,
            m_target: 1.0,
        };
        let b0 = Matrix::from_rows(&[&[3.0, 5.0]]);
        let b1 = Matrix::from_rows(&[&[2.5, 6.5]]);
        let out = op.forward(&[&b0, &b1]);
        let gout = Matrix::from_vec(1, 1, vec![1.0]);
        let grads = op.backward(&[&b0, &b1], &out, &gout);
        let eps = 1e-3f32;
        for (li, table) in [&b0, &b1].iter().enumerate() {
            for d in 0..2 {
                let mut plus = (*table).clone();
                plus.set(0, d, plus.get(0, d) + eps);
                let mut minus = (*table).clone();
                minus.set(0, d, minus.get(0, d) - eps);
                let (fp, fm) = if li == 0 {
                    (
                        op.forward(&[&plus, &b1]).get(0, 0),
                        op.forward(&[&minus, &b1]).get(0, 0),
                    )
                } else {
                    (
                        op.forward(&[&b0, &plus]).get(0, 0),
                        op.forward(&[&b0, &minus]).get(0, 0),
                    )
                };
                let fd = (fp - fm) / (2.0 * eps);
                let analytic = grads[li].as_ref().unwrap().get(0, d);
                let tol = (fd.abs() * 0.05).max(0.05);
                assert!(
                    (analytic - fd).abs() < tol,
                    "layer {li} group {d}: analytic {analytic} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn effective_bits_clamps_and_rounds() {
        assert_eq!(effective_bits(0.2), 1);
        assert_eq!(effective_bits(3.4), 3);
        assert_eq!(effective_bits(3.6), 4);
        assert_eq!(effective_bits(12.0), 8);
    }
}
