//! Quantization-aware training loops for Degree-Aware (ours) and DQ
//! (baseline) quantization.

use std::rc::Rc;

use mega_gnn::{accuracy, build_adjacency, Gnn, GnnKind, ModelConfig};
use mega_graph::datasets::Dataset;
use mega_tensor::{Adam, CsrMatrix, Matrix, Optimizer, Tape};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grouping::DegreeGrouping;
use crate::hooks::{DegreeAwareHook, DqHook, MemoryConfig};
use crate::input::InputQuant;
use crate::quantizer::{fake_quantize, lsq_init_scale};
use crate::report::BitAssignment;

/// Hyper-parameters for quantization-aware training.
#[derive(Debug, Clone)]
pub struct QatConfig {
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate for model parameters.
    pub lr: f32,
    /// Learning rate for quantization scales.
    pub quant_lr: f32,
    /// Learning rate for continuous bitwidths (needs to be large enough to
    /// traverse the 1..8 range within one training run).
    pub bits_lr: f32,
    /// Dropout on hidden activations.
    pub dropout: f32,
    /// Early-stopping patience (0 disables).
    pub patience: usize,
    /// Target element-weighted average bitwidth over all feature maps
    /// (drives Eq. 4's `M_target`).
    pub target_avg_bits: f32,
    /// Penalty factor λ; `None` selects `0.5 / M_target²`, which normalizes
    /// the squared-KB penalty to O(1).
    pub lambda: Option<f32>,
    /// Initial continuous bitwidth for every degree group.
    pub init_bits: f32,
    /// Relative MSE tolerance for input calibration.
    pub input_mse_tol: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QatConfig {
    fn default() -> Self {
        Self {
            epochs: 120,
            lr: 0.01,
            quant_lr: 0.02,
            bits_lr: 0.15,
            dropout: 0.5,
            patience: 30,
            target_avg_bits: 2.2,
            lambda: None,
            init_bits: 6.0,
            input_mse_tol: 0.01,
            seed: 0x9A7,
        }
    }
}

/// Outcome of a QAT run.
#[derive(Debug, Clone)]
pub struct QatOutcome {
    /// Best validation accuracy observed.
    pub best_val_accuracy: f64,
    /// Test accuracy at the best-validation epoch.
    pub test_accuracy: f64,
    /// Final total training loss.
    pub final_loss: f32,
    /// Epochs actually run.
    pub epochs_run: usize,
    /// Wall-clock seconds (for the §VII-1 overhead discussion).
    pub wall_seconds: f64,
    /// Per-layer per-node bitwidths (layer 0 = input features).
    pub assignment: BitAssignment,
    /// Element-weighted average bitwidth ("Average Bits" in Table VI).
    pub average_bits: f64,
    /// Compression ratio versus FP32 ("CR" in Table VI).
    pub compression_ratio: f64,
}

/// Runs Degree-Aware or DQ quantization-aware training.
#[derive(Debug, Clone, Default)]
pub struct QatTrainer {
    /// Hyper-parameters.
    pub config: QatConfig,
}

impl QatTrainer {
    /// Creates a trainer with the given configuration.
    pub fn new(config: QatConfig) -> Self {
        Self { config }
    }

    /// Trains `kind` on `dataset` with Degree-Aware mixed-precision
    /// quantization (the paper's method).
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no dense features.
    pub fn train_degree_aware(&self, kind: GnnKind, dataset: &Dataset) -> QatOutcome {
        let start = std::time::Instant::now();
        let cfg = &self.config;
        let model_cfg = ModelConfig::for_dataset(kind, dataset);
        let grouping = DegreeGrouping::default();
        let node_groups = grouping.node_groups(&dataset.graph);

        // Calibrate + quantize the constant input feature map.
        let iq = InputQuant::calibrate(
            dataset.features(),
            &node_groups,
            grouping.num_groups(),
            cfg.input_mse_tol,
        );
        let x_sparse = Rc::new(CsrMatrix::from_dense(&Matrix::from_vec(
            iq.quantized.rows(),
            iq.quantized.dim(),
            iq.quantized.data().to_vec(),
        )));

        // Memory target: element-weighted average bitwidth over all maps.
        let n = dataset.graph.num_nodes() as f64;
        let hidden_dims: Vec<usize> = model_cfg
            .layer_dims()
            .iter()
            .skip(1)
            .map(|&(i, _)| i)
            .collect();
        let total_elems = n * (model_cfg.in_dim as f64 + hidden_dims.iter().sum::<usize>() as f64);
        let m_target_kb = cfg.target_avg_bits as f64 * total_elems / (8.0 * 1024.0);
        let lambda = cfg
            .lambda
            .unwrap_or_else(|| (0.5 / (m_target_kb * m_target_kb)) as f32);

        let mut hook =
            DegreeAwareHook::new(&dataset.graph, &grouping, model_cfg.layers, cfg.init_bits)
                .with_memory(MemoryConfig {
                    hidden_dims: hidden_dims.clone(),
                    group_counts: grouping.group_counts(&dataset.graph),
                    constant_bits: iq.total_bits,
                    m_target_kb,
                });

        let mut model = Gnn::new(model_cfg.clone());
        let adjacency = build_adjacency(&dataset.graph, kind.aggregator(cfg.seed));
        let adjacency_t = Rc::new(adjacency.transpose());
        let labels = Rc::new(dataset.labels.clone());
        let train_idx = Rc::new(dataset.splits.train.clone());
        let mut model_opt = Adam::new(cfg.lr).with_weight_decay(5e-4);
        let mut scale_opt = Adam::new(cfg.quant_lr);
        let mut bits_opt = Adam::new(cfg.bits_lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut best_val = f64::NEG_INFINITY;
        let mut best_test = 0.0f64;
        let mut since_best = 0usize;
        let mut final_loss = f32::NAN;
        let mut epochs_run = 0usize;
        for _epoch in 0..cfg.epochs {
            epochs_run += 1;
            let masks = dropout_masks(
                cfg.dropout,
                dataset.graph.num_nodes(),
                &hidden_dims,
                &mut rng,
            );
            let mut tape = Tape::new();
            let out = model.forward_from_sparse(
                &mut tape,
                &x_sparse,
                &adjacency,
                &adjacency_t,
                &mut hook,
                masks.as_deref(),
            );
            let ce =
                tape.softmax_cross_entropy(out.logits, Rc::clone(&labels), Rc::clone(&train_idx));
            let mem = hook.memory_penalty(&mut tape);
            let mem_scaled = tape.scale(mem, lambda);
            let total = tape.add(ce, mem_scaled);
            final_loss = tape.value(total).get(0, 0);
            tape.backward(total);
            step_model(&mut model, &tape, &out, &mut model_opt);
            hook.step(&tape, &mut scale_opt, &mut bits_opt);

            // Evaluation (quantized path, no dropout).
            let mut tape = Tape::new();
            let out = model.forward_from_sparse(
                &mut tape,
                &x_sparse,
                &adjacency,
                &adjacency_t,
                &mut hook,
                None,
            );
            let logits = tape.value(out.logits);
            let val = accuracy(logits, &dataset.labels, &dataset.splits.val);
            let test = accuracy(logits, &dataset.labels, &dataset.splits.test);
            if val > best_val {
                best_val = val;
                best_test = test;
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience > 0 && since_best >= cfg.patience {
                    break;
                }
            }
        }

        let mut layers = vec![iq.node_bits.clone()];
        let mut dims = vec![model_cfg.in_dim];
        for (i, &d) in hidden_dims.iter().enumerate() {
            layers.push(hook.node_bits(i));
            dims.push(d);
        }
        let assignment = BitAssignment::new(layers, dims);
        QatOutcome {
            best_val_accuracy: best_val.max(0.0),
            test_accuracy: best_test,
            final_loss,
            epochs_run,
            wall_seconds: start.elapsed().as_secs_f64(),
            average_bits: assignment.average_bits(),
            compression_ratio: assignment.compression_ratio(),
            assignment,
        }
    }

    /// Trains `kind` on `dataset` with the DQ baseline at a uniform
    /// bitwidth.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has no dense features.
    pub fn train_dq(&self, kind: GnnKind, dataset: &Dataset, bits: u8) -> QatOutcome {
        let start = std::time::Instant::now();
        let cfg = &self.config;
        let model_cfg = ModelConfig::for_dataset(kind, dataset);

        // DQ quantizes the input uniformly at `bits` with a per-tensor scale.
        let features = dataset.features();
        let scale = lsq_init_scale(features.data().iter().copied().filter(|&x| x != 0.0), bits);
        let qdata: Vec<f32> = features
            .data()
            .iter()
            .map(|&x| {
                if x == 0.0 {
                    0.0
                } else {
                    fake_quantize(x, scale, bits)
                }
            })
            .collect();
        let x_sparse = Rc::new(CsrMatrix::from_dense(&Matrix::from_vec(
            features.rows(),
            features.dim(),
            qdata,
        )));

        let mut hook = DqHook::new(&dataset.graph, model_cfg.layers, bits);
        let mut model = Gnn::new(model_cfg.clone());
        let adjacency = build_adjacency(&dataset.graph, kind.aggregator(cfg.seed));
        let adjacency_t = Rc::new(adjacency.transpose());
        let labels = Rc::new(dataset.labels.clone());
        let train_idx = Rc::new(dataset.splits.train.clone());
        let hidden_dims: Vec<usize> = model_cfg
            .layer_dims()
            .iter()
            .skip(1)
            .map(|&(i, _)| i)
            .collect();
        let mut model_opt = Adam::new(cfg.lr).with_weight_decay(5e-4);
        let mut quant_opt = Adam::new(cfg.quant_lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD0);

        let mut best_val = f64::NEG_INFINITY;
        let mut best_test = 0.0f64;
        let mut since_best = 0usize;
        let mut final_loss = f32::NAN;
        let mut epochs_run = 0usize;
        for epoch in 0..cfg.epochs {
            epochs_run += 1;
            hook.train_mode = true;
            hook.set_epoch(epoch as u64);
            let masks = dropout_masks(
                cfg.dropout,
                dataset.graph.num_nodes(),
                &hidden_dims,
                &mut rng,
            );
            let mut tape = Tape::new();
            let out = model.forward_from_sparse(
                &mut tape,
                &x_sparse,
                &adjacency,
                &adjacency_t,
                &mut hook,
                masks.as_deref(),
            );
            let loss =
                tape.softmax_cross_entropy(out.logits, Rc::clone(&labels), Rc::clone(&train_idx));
            final_loss = tape.value(loss).get(0, 0);
            tape.backward(loss);
            step_model(&mut model, &tape, &out, &mut model_opt);
            hook.step(&tape, &mut quant_opt);

            hook.train_mode = false;
            let mut tape = Tape::new();
            let out = model.forward_from_sparse(
                &mut tape,
                &x_sparse,
                &adjacency,
                &adjacency_t,
                &mut hook,
                None,
            );
            let logits = tape.value(out.logits);
            let val = accuracy(logits, &dataset.labels, &dataset.splits.val);
            let test = accuracy(logits, &dataset.labels, &dataset.splits.test);
            if val > best_val {
                best_val = val;
                best_test = test;
                since_best = 0;
            } else {
                since_best += 1;
                if cfg.patience > 0 && since_best >= cfg.patience {
                    break;
                }
            }
        }

        let mut dims = vec![model_cfg.in_dim];
        dims.extend(hidden_dims);
        let assignment = BitAssignment::uniform(bits, dataset.graph.num_nodes(), dims);
        QatOutcome {
            best_val_accuracy: best_val.max(0.0),
            test_accuracy: best_test,
            final_loss,
            epochs_run,
            wall_seconds: start.elapsed().as_secs_f64(),
            average_bits: assignment.average_bits(),
            compression_ratio: assignment.compression_ratio(),
            assignment,
        }
    }
}

fn dropout_masks(p: f32, n: usize, hidden_dims: &[usize], rng: &mut StdRng) -> Option<Vec<Matrix>> {
    if p <= 0.0 {
        return None;
    }
    let keep = 1.0 - p;
    Some(
        hidden_dims
            .iter()
            .map(|&d| {
                Matrix::from_fn(n, d, |_, _| {
                    if rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
            })
            .collect(),
    )
}

fn step_model(model: &mut Gnn, tape: &Tape, out: &mega_gnn::model::ForwardOutput, opt: &mut Adam) {
    let grads: Vec<Matrix> = out
        .weight_vars
        .iter()
        .zip(&out.bias_vars)
        .flat_map(|(&w, &b)| {
            [
                tape.try_grad(w)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(tape.value(w).rows(), tape.value(w).cols())),
                tape.try_grad(b)
                    .cloned()
                    .unwrap_or_else(|| Matrix::zeros(tape.value(b).rows(), tape.value(b).cols())),
            ]
        })
        .collect();
    let mut params = model.params_mut();
    let refs: Vec<&Matrix> = grads.iter().collect();
    opt.step(&mut params, &refs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::datasets::DatasetSpec;

    fn tiny() -> Dataset {
        DatasetSpec::cora()
            .scaled(0.12)
            .with_feature_dim(96)
            .materialize()
    }

    fn quick_config() -> QatConfig {
        QatConfig {
            epochs: 25,
            dropout: 0.2,
            patience: 0,
            ..QatConfig::default()
        }
    }

    #[test]
    fn degree_aware_compresses_far_beyond_8x() {
        let d = tiny();
        let out = QatTrainer::new(quick_config()).train_degree_aware(GnnKind::Gcn, &d);
        assert!(
            out.compression_ratio > 8.0,
            "CR {} not better than DQ-INT4's 8x",
            out.compression_ratio
        );
        assert!(out.average_bits < 4.0, "avg bits {}", out.average_bits);
        assert_eq!(out.assignment.num_layers(), 2);
    }

    #[test]
    fn degree_aware_accuracy_beats_chance() {
        let d = tiny();
        let out = QatTrainer::new(quick_config()).train_degree_aware(GnnKind::Gcn, &d);
        let chance = 1.0 / d.spec.num_classes as f64;
        assert!(
            out.test_accuracy > 2.0 * chance,
            "accuracy {} vs chance {}",
            out.test_accuracy,
            chance
        );
    }

    #[test]
    fn dq_reports_exact_uniform_ratio() {
        let d = tiny();
        let out = QatTrainer::new(quick_config()).train_dq(GnnKind::Gcn, &d, 4);
        assert_eq!(out.average_bits, 4.0);
        assert_eq!(out.compression_ratio, 8.0);
        assert!(out.final_loss.is_finite());
    }

    #[test]
    fn qat_is_deterministic() {
        let d = tiny();
        let cfg = QatConfig {
            epochs: 4,
            ..quick_config()
        };
        let a = QatTrainer::new(cfg.clone()).train_degree_aware(GnnKind::Gcn, &d);
        let b = QatTrainer::new(cfg).train_degree_aware(GnnKind::Gcn, &d);
        assert_eq!(a.final_loss, b.final_loss);
        assert_eq!(a.assignment, b.assignment);
    }

    #[test]
    fn memory_pressure_lowers_bits_versus_loose_target() {
        let d = tiny();
        let tight = QatTrainer::new(QatConfig {
            target_avg_bits: 1.5,
            epochs: 20,
            patience: 0,
            ..QatConfig::default()
        })
        .train_degree_aware(GnnKind::Gcn, &d);
        let loose = QatTrainer::new(QatConfig {
            target_avg_bits: 6.0,
            epochs: 20,
            patience: 0,
            ..QatConfig::default()
        })
        .train_degree_aware(GnnKind::Gcn, &d);
        assert!(
            tight.average_bits < loose.average_bits,
            "tight {} !< loose {}",
            tight.average_bits,
            loose.average_bits
        );
    }
}
