//! Offline calibration of the input feature map.
//!
//! The input features `X⁰` are constants, so their per-degree-group
//! quantization parameters do not need gradient training: for each group we
//! pick the smallest bitwidth whose quantization error is within tolerance
//! (binary bag-of-words collapses to 1 bit exactly). The resulting constant
//! bit count feeds the memory penalty of Eq. (4), and training runs on the
//! *quantized* inputs so reported accuracy includes input quantization
//! error.

use mega_graph::datasets::Features;

use crate::quantizer::{fake_quantize, lsq_init_scale, mse, qmax};

/// Calibrated input quantization.
#[derive(Debug, Clone)]
pub struct InputQuant {
    /// Bitwidth per degree group.
    pub bits: Vec<u8>,
    /// Scale per degree group.
    pub scales: Vec<f32>,
    /// The fake-quantized feature map (training input).
    pub quantized: Features,
    /// Total storage in bits: `Σ_v dim · b_{group(v)}`.
    pub total_bits: f64,
    /// Per-node bitwidths (for the accelerator's bit assignment).
    pub node_bits: Vec<u8>,
}

impl InputQuant {
    /// Calibrates per-group `(scale, bits)` on `features`.
    ///
    /// `rel_mse_tol` bounds the quantization MSE relative to the group's
    /// mean-square value (default 0.01 = 1% energy loss).
    ///
    /// # Panics
    ///
    /// Panics if `node_groups.len() != features.rows()`.
    pub fn calibrate(
        features: &Features,
        node_groups: &[u32],
        num_groups: usize,
        rel_mse_tol: f64,
    ) -> Self {
        assert_eq!(
            node_groups.len(),
            features.rows(),
            "group map length mismatch"
        );
        // Sample non-zero values per group (zeros quantize exactly).
        const MAX_SAMPLE: usize = 4096;
        let mut samples: Vec<Vec<f32>> = vec![Vec::new(); num_groups];
        for (v, &group) in node_groups.iter().enumerate() {
            let g = group as usize;
            if samples[g].len() >= MAX_SAMPLE {
                continue;
            }
            for &x in features.row(v) {
                if x != 0.0 && samples[g].len() < MAX_SAMPLE {
                    samples[g].push(x);
                }
            }
        }
        let mut bits = vec![1u8; num_groups];
        let mut scales = vec![1.0f32; num_groups];
        for g in 0..num_groups {
            let vals = &samples[g];
            if vals.is_empty() {
                continue;
            }
            let energy: f64 =
                vals.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>() / vals.len() as f64;
            let tol = energy * rel_mse_tol;
            let max_abs = vals.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
            let mut chosen = (8u8, max_abs / qmax(8) as f32);
            for b in 1u8..=8 {
                // Two scale candidates: full-range and LSQ-style.
                let full = (max_abs / qmax(b) as f32).max(1e-8);
                let lsq = lsq_init_scale(vals.iter().copied(), b);
                let (alpha, err) = [full, lsq]
                    .into_iter()
                    .map(|a| (a, mse(vals, a, b)))
                    .min_by(|x, y| x.1.total_cmp(&y.1))
                    .expect("two candidates");
                if err <= tol {
                    chosen = (b, alpha);
                    break;
                }
            }
            bits[g] = chosen.0;
            scales[g] = chosen.1;
        }
        // Apply.
        let dim = features.dim();
        let mut data = Vec::with_capacity(features.rows() * dim);
        let mut total_bits = 0.0f64;
        let mut node_bits = Vec::with_capacity(features.rows());
        for (v, &group) in node_groups.iter().enumerate() {
            let g = group as usize;
            node_bits.push(bits[g]);
            total_bits += dim as f64 * bits[g] as f64;
            for &x in features.row(v) {
                data.push(if x == 0.0 {
                    0.0
                } else {
                    fake_quantize(x, scales[g], bits[g])
                });
            }
        }
        Self {
            bits,
            scales,
            quantized: Features::from_vec(features.rows(), dim, data),
            total_bits,
            node_bits,
        }
    }

    /// Mean bitwidth over nodes.
    pub fn average_bits(&self) -> f64 {
        if self.node_bits.is_empty() {
            return 0.0;
        }
        self.node_bits.iter().map(|&b| b as f64).sum::<f64>() / self.node_bits.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_features() -> Features {
        // 4 nodes × 8 dims, binary.
        let mut data = vec![0.0f32; 32];
        for (i, slot) in data.iter_mut().enumerate() {
            if i % 3 == 0 {
                *slot = 1.0;
            }
        }
        Features::from_vec(4, 8, data)
    }

    #[test]
    fn binary_inputs_calibrate_to_one_bit_exactly() {
        let f = binary_features();
        let groups = vec![0u32, 0, 1, 1];
        let iq = InputQuant::calibrate(&f, &groups, 2, 0.01);
        assert_eq!(iq.bits, vec![1, 1]);
        assert_eq!(iq.quantized.data(), f.data(), "must be lossless");
        assert_eq!(iq.total_bits, 4.0 * 8.0);
    }

    #[test]
    fn float_inputs_need_more_bits() {
        // tf-idf style floats in (0.2, 1.0).
        let data: Vec<f32> = (0..64)
            .map(|i| {
                if i % 2 == 0 {
                    0.0
                } else {
                    0.2 + 0.013 * i as f32
                }
            })
            .collect();
        let f = Features::from_vec(8, 8, data);
        let groups = vec![0u32; 8];
        let iq = InputQuant::calibrate(&f, &groups, 1, 0.01);
        assert!(iq.bits[0] >= 3, "bits {:?} too low for floats", iq.bits);
        // Error bound holds on the whole map.
        let e: f64 = f
            .data()
            .iter()
            .zip(iq.quantized.data())
            .map(|(a, b)| ((a - b) as f64).powi(2))
            .sum::<f64>()
            / f.data().len() as f64;
        let energy: f64 =
            f.data().iter().map(|&x| (x as f64).powi(2)).sum::<f64>() / f.data().len() as f64;
        assert!(e <= energy * 0.05, "mse {e} vs energy {energy}");
    }

    #[test]
    fn zeros_stay_zero() {
        let f = Features::from_vec(2, 4, vec![0.0; 8]);
        let iq = InputQuant::calibrate(&f, &[0, 0], 1, 0.01);
        assert!(iq.quantized.data().iter().all(|&x| x == 0.0));
        assert_eq!(iq.average_bits(), 1.0);
    }

    #[test]
    fn empty_groups_default_to_one_bit() {
        let f = binary_features();
        let iq = InputQuant::calibrate(&f, &[0, 0, 0, 0], 3, 0.01);
        assert_eq!(iq.bits[1], 1);
        assert_eq!(iq.bits[2], 1);
    }
}
