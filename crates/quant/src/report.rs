//! Compression accounting: average bitwidths, compression ratios, and the
//! per-node bit assignment consumed by the accelerator simulators.

/// Per-layer, per-node feature bitwidths for a quantized model.
///
/// Layer 0 is the input feature map; subsequent entries are the hidden
/// feature maps. This is the interface between the algorithm side (QAT) and
/// the hardware side (the MEGA simulator stores/loads features at exactly
/// these widths).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitAssignment {
    layers: Vec<Vec<u8>>,
    dims: Vec<usize>,
}

impl BitAssignment {
    /// Builds an assignment.
    ///
    /// # Panics
    ///
    /// Panics if layer counts disagree, any layer is empty, node counts
    /// differ between layers, or a bitwidth is outside `1..=8`.
    pub fn new(layers: Vec<Vec<u8>>, dims: Vec<usize>) -> Self {
        assert_eq!(layers.len(), dims.len(), "layers/dims length mismatch");
        assert!(!layers.is_empty(), "need at least one layer");
        let n = layers[0].len();
        for (l, bits) in layers.iter().enumerate() {
            assert_eq!(bits.len(), n, "layer {l} node count mismatch");
            assert!(
                bits.iter().all(|&b| (1..=8).contains(&b)),
                "layer {l} has bitwidth outside 1..=8"
            );
        }
        Self { layers, dims }
    }

    /// Uniform assignment (used for DQ baselines and FP32-as-32 reporting).
    pub fn uniform(bits: u8, nodes: usize, dims: Vec<usize>) -> Self {
        let layers = dims.iter().map(|_| vec![bits; nodes]).collect();
        Self::new(layers, dims)
    }

    /// Number of layers (including the input feature map).
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.layers[0].len()
    }

    /// Per-node bitwidths of layer `l`.
    pub fn layer_bits(&self, l: usize) -> &[u8] {
        &self.layers[l]
    }

    /// Feature dimension of layer `l`.
    pub fn layer_dim(&self, l: usize) -> usize {
        self.dims[l]
    }

    /// Total feature storage in bits: `Σ_l Σ_i dim_l · b_i^l`.
    pub fn total_bits(&self) -> f64 {
        self.layers
            .iter()
            .zip(&self.dims)
            .map(|(bits, &dim)| dim as f64 * bits.iter().map(|&b| b as f64).sum::<f64>())
            .sum()
    }

    /// Element-weighted average bitwidth (the paper's "Average Bits").
    pub fn average_bits(&self) -> f64 {
        let elems: f64 = self
            .dims
            .iter()
            .map(|&d| d as f64 * self.num_nodes() as f64)
            .sum();
        if elems == 0.0 {
            0.0
        } else {
            self.total_bits() / elems
        }
    }

    /// Compression ratio versus FP32 (the paper's "CR" = 32 / average bits).
    pub fn compression_ratio(&self) -> f64 {
        let avg = self.average_bits();
        if avg == 0.0 {
            0.0
        } else {
            32.0 / avg
        }
    }

    /// Histogram of bitwidths over all (layer, node) pairs, indices 1..=8.
    pub fn bit_histogram(&self) -> [usize; 9] {
        let mut hist = [0usize; 9];
        for layer in &self.layers {
            for &b in layer {
                hist[b as usize] += 1;
            }
        }
        hist
    }
}

/// Element-weighted average bits over explicit per-layer tables (free-form
/// variant of [`BitAssignment::average_bits`]).
pub fn average_bits(layers: &[(usize, &[u8])]) -> f64 {
    let mut bits = 0.0f64;
    let mut elems = 0.0f64;
    for &(dim, table) in layers {
        bits += dim as f64 * table.iter().map(|&b| b as f64).sum::<f64>();
        elems += (dim * table.len()) as f64;
    }
    if elems == 0.0 {
        0.0
    } else {
        bits / elems
    }
}

/// Compression ratio versus FP32 for an average bitwidth.
pub fn compression_ratio(avg_bits: f64) -> f64 {
    if avg_bits <= 0.0 {
        0.0
    } else {
        32.0 / avg_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_assignment_reports_exact_ratio() {
        let a = BitAssignment::uniform(4, 10, vec![100, 16]);
        assert_eq!(a.average_bits(), 4.0);
        assert_eq!(a.compression_ratio(), 8.0);
    }

    #[test]
    fn mixed_layers_weight_by_dimension() {
        // Layer 0: dim 100 at 1 bit; layer 1: dim 100 at 3 bits.
        let a = BitAssignment::new(vec![vec![1; 4], vec![3; 4]], vec![100, 100]);
        assert!((a.average_bits() - 2.0).abs() < 1e-12);
        assert!((a.compression_ratio() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn wide_input_layer_dominates() {
        // Cora-like: input dim 1433 at 1 bit, hidden 128 at 4 bits.
        let a = BitAssignment::new(vec![vec![1; 8], vec![4; 8]], vec![1433, 128]);
        let avg = a.average_bits();
        assert!(avg < 1.5, "avg {avg}");
        assert!(a.compression_ratio() > 20.0);
    }

    #[test]
    fn histogram_counts_all_entries() {
        let a = BitAssignment::new(vec![vec![1, 2, 2], vec![8, 8, 8]], vec![4, 4]);
        let h = a.bit_histogram();
        assert_eq!(h[1], 1);
        assert_eq!(h[2], 2);
        assert_eq!(h[8], 3);
        assert_eq!(h.iter().sum::<usize>(), 6);
    }

    #[test]
    fn free_form_average_matches_struct() {
        let layers: Vec<(usize, &[u8])> =
            vec![(100, &[1u8, 1, 1, 1][..]), (100, &[3u8, 3, 3, 3][..])];
        assert!((average_bits(&layers) - 2.0).abs() < 1e-12);
        assert_eq!(compression_ratio(2.0), 16.0);
    }

    #[test]
    #[should_panic(expected = "bitwidth outside")]
    fn out_of_range_bits_panic() {
        let _ = BitAssignment::new(vec![vec![0, 4]], vec![8]);
    }
}
