//! The degree-aware bitwidth *policy*: the reusable decision rule mapping a
//! node's in-degree to a serving bitwidth.
//!
//! QAT learns per-degree-group `(scale, bits)` pairs (see [`crate::qat`]);
//! at serving time what matters is the *shape* those runs converge to —
//! few bits for the power-law majority of low-degree nodes, more bits for
//! the rare high-in-degree nodes whose aggregated features grow large
//! (paper Fig. 3). [`DegreePolicy`] captures that shape as explicit
//! thresholds so both the workload builders (`mega::workloads`) and the
//! online inference engine (`mega-serve`) share one definition.

use mega_graph::Graph;

/// Why a [`DegreePolicy`] definition was rejected by
/// [`DegreePolicy::try_new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// No tiers at all — the policy would map nothing.
    EmptyTiers,
    /// Two tiers share the same degree threshold; the mapping would be
    /// ambiguous.
    DuplicateThreshold(usize),
    /// Thresholds are not sorted ascending; tier lookup walks them in
    /// order and would shadow later tiers.
    UnsortedThresholds {
        /// The threshold that broke the order.
        threshold: usize,
        /// The (larger) threshold preceding it.
        previous: usize,
    },
    /// A bitwidth is outside the representable `1..=8` range.
    BitsOutOfRange(u8),
    /// Bitwidths decrease as degree grows, inverting the degree-aware
    /// premise (high-degree nodes need *more* bits, paper Fig. 3).
    NonMonotoneBits {
        /// Bits of the offending tier (or the overflow tier).
        bits: u8,
        /// Bits of the tier before it.
        previous: u8,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::EmptyTiers => write!(f, "policy needs at least one tier"),
            PolicyError::DuplicateThreshold(d) => {
                write!(
                    f,
                    "duplicate degree threshold {d}: tier thresholds must be strictly ascending"
                )
            }
            PolicyError::UnsortedThresholds {
                threshold,
                previous,
            } => write!(
                f,
                "tier thresholds must be strictly ascending: {threshold} follows {previous}"
            ),
            PolicyError::BitsOutOfRange(bits) => {
                write!(f, "bitwidth {bits} out of range (must be 1..=8)")
            }
            PolicyError::NonMonotoneBits { bits, previous } => write!(
                f,
                "bitwidths must not decrease with degree: {bits} bits follows {previous}"
            ),
        }
    }
}

impl std::error::Error for PolicyError {}

/// Maps in-degree to a serving bitwidth via ascending degree thresholds.
///
/// # Example
///
/// ```
/// use mega_quant::DegreePolicy;
///
/// let policy = DegreePolicy::paper_default();
/// assert_eq!(policy.bits_for_degree(0), 2);
/// assert_eq!(policy.bits_for_degree(10), 4);
/// assert!(policy.bits_for_degree(1_000) >= policy.bits_for_degree(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreePolicy {
    /// `(max_degree_inclusive, bits)` pairs in ascending degree order; the
    /// final tier has no upper bound.
    tiers: Vec<(usize, u8)>,
    /// Bits for degrees above the last threshold.
    overflow_bits: u8,
}

impl DegreePolicy {
    /// The profile Degree-Aware QAT converges to on the paper's citation
    /// graphs: 2–3 bits for the low-degree majority, up to 6 for hubs.
    pub fn paper_default() -> Self {
        Self::new(vec![(2, 2), (8, 3), (32, 4), (128, 5)], 6)
    }

    /// A policy from explicit `(max_degree_inclusive, bits)` tiers plus the
    /// bitwidth used above the last threshold.
    ///
    /// # Panics
    ///
    /// Panics on any condition [`DegreePolicy::try_new`] rejects.
    pub fn new(tiers: Vec<(usize, u8)>, overflow_bits: u8) -> Self {
        match Self::try_new(tiers, overflow_bits) {
            Ok(policy) => policy,
            Err(e) => panic!("invalid degree policy: {e}"),
        }
    }

    /// Fallible constructor: validates that tiers exist, degree thresholds
    /// are strictly ascending (no duplicates, no inversions), every
    /// bitwidth is in `1..=8`, and bitwidths never *decrease* as degree
    /// grows (the degree-aware premise — hubs get more bits, not fewer).
    pub fn try_new(tiers: Vec<(usize, u8)>, overflow_bits: u8) -> Result<Self, PolicyError> {
        if tiers.is_empty() {
            return Err(PolicyError::EmptyTiers);
        }
        for window in tiers.windows(2) {
            if window[0].0 == window[1].0 {
                return Err(PolicyError::DuplicateThreshold(window[1].0));
            }
            if window[0].0 > window[1].0 {
                return Err(PolicyError::UnsortedThresholds {
                    threshold: window[1].0,
                    previous: window[0].0,
                });
            }
        }
        for &(_, bits) in tiers.iter() {
            if !(1..=8).contains(&bits) {
                return Err(PolicyError::BitsOutOfRange(bits));
            }
        }
        if !(1..=8).contains(&overflow_bits) {
            return Err(PolicyError::BitsOutOfRange(overflow_bits));
        }
        for window in tiers.windows(2) {
            if window[1].1 < window[0].1 {
                return Err(PolicyError::NonMonotoneBits {
                    bits: window[1].1,
                    previous: window[0].1,
                });
            }
        }
        let last_bits = tiers.last().expect("tiers non-empty").1;
        if overflow_bits < last_bits {
            return Err(PolicyError::NonMonotoneBits {
                bits: overflow_bits,
                previous: last_bits,
            });
        }
        Ok(Self {
            tiers,
            overflow_bits,
        })
    }

    /// The bitwidth served to a node with this in-degree.
    pub fn bits_for_degree(&self, in_degree: usize) -> u8 {
        for &(max_degree, bits) in &self.tiers {
            if in_degree <= max_degree {
                return bits;
            }
        }
        self.overflow_bits
    }

    /// Per-node bitwidths for a whole graph (the degree profile the
    /// hardware workload builders consume).
    pub fn profile(&self, graph: &Graph) -> Vec<u8> {
        (0..graph.num_nodes())
            .map(|v| self.bits_for_degree(graph.in_degree(v)))
            .collect()
    }

    /// Tier index (0-based, low bits first) of an in-degree. Serving uses
    /// this to bucket requests with similar precision/cost together.
    pub fn tier_of_degree(&self, in_degree: usize) -> usize {
        for (i, &(max_degree, _)) in self.tiers.iter().enumerate() {
            if in_degree <= max_degree {
                return i;
            }
        }
        self.tiers.len()
    }

    /// Number of distinct tiers (including the overflow tier).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len() + 1
    }

    /// The bitwidth of tier `i` (as produced by
    /// [`DegreePolicy::tier_of_degree`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_tiers()`.
    pub fn tier_bits(&self, i: usize) -> u8 {
        if i < self.tiers.len() {
            self.tiers[i].1
        } else {
            assert!(i == self.tiers.len(), "tier {i} out of range");
            self.overflow_bits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_published_profile() {
        let p = DegreePolicy::paper_default();
        let expected: &[(usize, u8)] = &[
            (0, 2),
            (2, 2),
            (3, 3),
            (8, 3),
            (9, 4),
            (32, 4),
            (33, 5),
            (128, 5),
            (129, 6),
            (10_000, 6),
        ];
        for &(degree, bits) in expected {
            assert_eq!(p.bits_for_degree(degree), bits, "degree {degree}");
        }
    }

    #[test]
    fn bits_are_monotone_in_degree() {
        let p = DegreePolicy::paper_default();
        let mut last = 0;
        for degree in 0..2_000 {
            let b = p.bits_for_degree(degree);
            assert!(b >= last, "bits dropped at degree {degree}");
            last = b;
        }
    }

    #[test]
    fn tiers_partition_the_degree_axis() {
        let p = DegreePolicy::paper_default();
        assert_eq!(p.num_tiers(), 5);
        assert_eq!(p.tier_of_degree(0), 0);
        assert_eq!(p.tier_of_degree(5), 1);
        assert_eq!(p.tier_of_degree(500), 4);
        for degree in 0..300 {
            let tier = p.tier_of_degree(degree);
            assert_eq!(p.tier_bits(tier), p.bits_for_degree(degree));
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_tiers() {
        DegreePolicy::new(vec![(8, 3), (2, 2)], 6);
    }

    #[test]
    fn try_new_accepts_the_paper_default() {
        let p = DegreePolicy::try_new(vec![(2, 2), (8, 3), (32, 4), (128, 5)], 6).unwrap();
        assert_eq!(p, DegreePolicy::paper_default());
    }

    #[test]
    fn try_new_rejects_empty_tiers() {
        assert_eq!(
            DegreePolicy::try_new(vec![], 4),
            Err(PolicyError::EmptyTiers)
        );
    }

    #[test]
    fn try_new_rejects_duplicate_thresholds() {
        let err = DegreePolicy::try_new(vec![(2, 2), (2, 3)], 6).unwrap_err();
        assert_eq!(err, PolicyError::DuplicateThreshold(2));
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn try_new_rejects_unsorted_thresholds() {
        let err = DegreePolicy::try_new(vec![(8, 2), (2, 3)], 6).unwrap_err();
        assert_eq!(
            err,
            PolicyError::UnsortedThresholds {
                threshold: 2,
                previous: 8
            }
        );
        assert!(err.to_string().contains("ascending"));
    }

    #[test]
    fn try_new_rejects_bits_out_of_range() {
        assert_eq!(
            DegreePolicy::try_new(vec![(2, 0)], 6),
            Err(PolicyError::BitsOutOfRange(0))
        );
        assert_eq!(
            DegreePolicy::try_new(vec![(2, 2)], 9),
            Err(PolicyError::BitsOutOfRange(9))
        );
        assert_eq!(
            DegreePolicy::try_new(vec![(2, 2), (8, 12)], 6),
            Err(PolicyError::BitsOutOfRange(12))
        );
    }

    #[test]
    fn try_new_rejects_decreasing_bits() {
        assert_eq!(
            DegreePolicy::try_new(vec![(2, 4), (8, 3)], 6),
            Err(PolicyError::NonMonotoneBits {
                bits: 3,
                previous: 4
            })
        );
        // Overflow tier counts too: it serves the highest degrees.
        assert_eq!(
            DegreePolicy::try_new(vec![(2, 2), (8, 5)], 4),
            Err(PolicyError::NonMonotoneBits {
                bits: 4,
                previous: 5
            })
        );
        // Plateaus are fine — only strict decreases invert the premise.
        assert!(DegreePolicy::try_new(vec![(2, 3), (8, 3)], 3).is_ok());
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn new_panics_with_clear_message_on_empty() {
        DegreePolicy::new(vec![], 4);
    }

    #[test]
    fn single_tier_policies_work() {
        let p = DegreePolicy::try_new(vec![(4, 2)], 8).unwrap();
        assert_eq!(p.num_tiers(), 2);
        assert_eq!(p.bits_for_degree(4), 2);
        assert_eq!(p.bits_for_degree(5), 8);
        assert_eq!(p.tier_of_degree(1_000_000), 1);
    }
}
