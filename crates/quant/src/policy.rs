//! The degree-aware bitwidth *policy*: the reusable decision rule mapping a
//! node's in-degree to a serving bitwidth.
//!
//! QAT learns per-degree-group `(scale, bits)` pairs (see [`crate::qat`]);
//! at serving time what matters is the *shape* those runs converge to —
//! few bits for the power-law majority of low-degree nodes, more bits for
//! the rare high-in-degree nodes whose aggregated features grow large
//! (paper Fig. 3). [`DegreePolicy`] captures that shape as explicit
//! thresholds so both the workload builders (`mega::workloads`) and the
//! online inference engine (`mega-serve`) share one definition.

use mega_graph::Graph;

/// Maps in-degree to a serving bitwidth via ascending degree thresholds.
///
/// # Example
///
/// ```
/// use mega_quant::DegreePolicy;
///
/// let policy = DegreePolicy::paper_default();
/// assert_eq!(policy.bits_for_degree(0), 2);
/// assert_eq!(policy.bits_for_degree(10), 4);
/// assert!(policy.bits_for_degree(1_000) >= policy.bits_for_degree(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreePolicy {
    /// `(max_degree_inclusive, bits)` pairs in ascending degree order; the
    /// final tier has no upper bound.
    tiers: Vec<(usize, u8)>,
    /// Bits for degrees above the last threshold.
    overflow_bits: u8,
}

impl DegreePolicy {
    /// The profile Degree-Aware QAT converges to on the paper's citation
    /// graphs: 2–3 bits for the low-degree majority, up to 6 for hubs.
    pub fn paper_default() -> Self {
        Self::new(vec![(2, 2), (8, 3), (32, 4), (128, 5)], 6)
    }

    /// A policy from explicit `(max_degree_inclusive, bits)` tiers plus the
    /// bitwidth used above the last threshold.
    ///
    /// # Panics
    ///
    /// Panics if `tiers` is empty, thresholds are not strictly ascending,
    /// or any bitwidth is outside `1..=8`.
    pub fn new(tiers: Vec<(usize, u8)>, overflow_bits: u8) -> Self {
        assert!(!tiers.is_empty(), "policy needs at least one tier");
        for window in tiers.windows(2) {
            assert!(
                window[0].0 < window[1].0,
                "tier thresholds must be strictly ascending"
            );
        }
        for &(_, bits) in &tiers {
            assert!((1..=8).contains(&bits), "bitwidth {bits} out of range");
        }
        assert!(
            (1..=8).contains(&overflow_bits),
            "overflow bitwidth {overflow_bits} out of range"
        );
        Self {
            tiers,
            overflow_bits,
        }
    }

    /// The bitwidth served to a node with this in-degree.
    pub fn bits_for_degree(&self, in_degree: usize) -> u8 {
        for &(max_degree, bits) in &self.tiers {
            if in_degree <= max_degree {
                return bits;
            }
        }
        self.overflow_bits
    }

    /// Per-node bitwidths for a whole graph (the degree profile the
    /// hardware workload builders consume).
    pub fn profile(&self, graph: &Graph) -> Vec<u8> {
        (0..graph.num_nodes())
            .map(|v| self.bits_for_degree(graph.in_degree(v)))
            .collect()
    }

    /// Tier index (0-based, low bits first) of an in-degree. Serving uses
    /// this to bucket requests with similar precision/cost together.
    pub fn tier_of_degree(&self, in_degree: usize) -> usize {
        for (i, &(max_degree, _)) in self.tiers.iter().enumerate() {
            if in_degree <= max_degree {
                return i;
            }
        }
        self.tiers.len()
    }

    /// Number of distinct tiers (including the overflow tier).
    pub fn num_tiers(&self) -> usize {
        self.tiers.len() + 1
    }

    /// The bitwidth of tier `i` (as produced by
    /// [`DegreePolicy::tier_of_degree`]).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_tiers()`.
    pub fn tier_bits(&self, i: usize) -> u8 {
        if i < self.tiers.len() {
            self.tiers[i].1
        } else {
            assert!(i == self.tiers.len(), "tier {i} out of range");
            self.overflow_bits
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_published_profile() {
        let p = DegreePolicy::paper_default();
        let expected: &[(usize, u8)] = &[
            (0, 2),
            (2, 2),
            (3, 3),
            (8, 3),
            (9, 4),
            (32, 4),
            (33, 5),
            (128, 5),
            (129, 6),
            (10_000, 6),
        ];
        for &(degree, bits) in expected {
            assert_eq!(p.bits_for_degree(degree), bits, "degree {degree}");
        }
    }

    #[test]
    fn bits_are_monotone_in_degree() {
        let p = DegreePolicy::paper_default();
        let mut last = 0;
        for degree in 0..2_000 {
            let b = p.bits_for_degree(degree);
            assert!(b >= last, "bits dropped at degree {degree}");
            last = b;
        }
    }

    #[test]
    fn tiers_partition_the_degree_axis() {
        let p = DegreePolicy::paper_default();
        assert_eq!(p.num_tiers(), 5);
        assert_eq!(p.tier_of_degree(0), 0);
        assert_eq!(p.tier_of_degree(5), 1);
        assert_eq!(p.tier_of_degree(500), 4);
        for degree in 0..300 {
            let tier = p.tier_of_degree(degree);
            assert_eq!(p.tier_bits(tier), p.bits_for_degree(degree));
        }
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn rejects_unsorted_tiers() {
        DegreePolicy::new(vec![(8, 3), (2, 2)], 6);
    }
}
