//! In-degree → quantization-parameter-group mapping.
//!
//! The paper learns `(s_d, b_d)` per distinct degree `d` up to the graph's
//! maximum degree. Real degree ranges reach into the thousands (Reddit), so
//! we keep exact per-degree parameters up to a cap and log-spaced buckets
//! above it — functionally identical (few distinct high degrees exist) with
//! a bounded parameter count. DESIGN.md §4.5 records this decision.

use mega_graph::Graph;

/// Maps node in-degrees to parameter-group indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegreeGrouping {
    cap: usize,
    log_buckets: usize,
}

impl Default for DegreeGrouping {
    fn default() -> Self {
        Self {
            cap: 64,
            log_buckets: 8,
        }
    }
}

impl DegreeGrouping {
    /// Grouping with exact parameters for degrees `0..=cap` and
    /// `log_buckets` logarithmic buckets above.
    ///
    /// # Panics
    ///
    /// Panics if `log_buckets == 0`.
    pub fn new(cap: usize, log_buckets: usize) -> Self {
        assert!(log_buckets > 0, "need at least one overflow bucket");
        Self { cap, log_buckets }
    }

    /// Total number of parameter groups.
    pub fn num_groups(&self) -> usize {
        self.cap + 1 + self.log_buckets
    }

    /// Group index of an in-degree.
    pub fn group_of(&self, in_degree: usize) -> usize {
        if in_degree <= self.cap {
            in_degree
        } else {
            // log2 distance above the cap, saturating at the last bucket.
            let above = (in_degree as f64 / self.cap as f64).log2().floor() as usize;
            self.cap + 1 + above.min(self.log_buckets - 1)
        }
    }

    /// Group index per node of `graph`.
    pub fn node_groups(&self, graph: &Graph) -> Vec<u32> {
        (0..graph.num_nodes())
            .map(|v| self.group_of(graph.in_degree(v)) as u32)
            .collect()
    }

    /// Number of nodes per group.
    pub fn group_counts(&self, graph: &Graph) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_groups()];
        for v in 0..graph.num_nodes() {
            counts[self.group_of(graph.in_degree(v))] += 1;
        }
        counts
    }

    /// A representative in-degree per group (midpoint), used for reporting.
    pub fn representative_degree(&self, group: usize) -> usize {
        if group <= self.cap {
            group
        } else {
            let bucket = group - self.cap - 1;
            self.cap << (bucket + 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::Graph;

    #[test]
    fn low_degrees_map_to_themselves() {
        let g = DegreeGrouping::default();
        for d in 0..=64 {
            assert_eq!(g.group_of(d), d);
        }
    }

    #[test]
    fn high_degrees_bucket_logarithmically() {
        let g = DegreeGrouping::default();
        assert_eq!(g.group_of(65), 65); // first overflow bucket (64..128)
        assert_eq!(g.group_of(127), 65);
        assert_eq!(g.group_of(128), 66); // 128..256
        assert_eq!(g.group_of(255), 66);
        assert_eq!(g.group_of(1 << 20), g.num_groups() - 1); // saturates
    }

    #[test]
    fn num_groups_matches_layout() {
        let g = DegreeGrouping::new(10, 4);
        assert_eq!(g.num_groups(), 15);
        assert!(g.group_of(usize::MAX / 2) < g.num_groups());
    }

    #[test]
    fn node_groups_and_counts_agree() {
        let g = Graph::from_directed_edges(5, vec![(0, 1), (2, 1), (3, 1), (4, 0)]);
        let grouping = DegreeGrouping::new(4, 2);
        let groups = grouping.node_groups(&g);
        assert_eq!(groups[1], 3); // in-degree 3
        assert_eq!(groups[0], 1);
        assert_eq!(groups[2], 0);
        let counts = grouping.group_counts(&g);
        assert_eq!(counts.iter().sum::<usize>(), 5);
        assert_eq!(counts[0], 3); // nodes 2, 3, 4
    }

    #[test]
    fn representative_degrees_are_monotone() {
        let g = DegreeGrouping::default();
        let mut prev = 0;
        for group in 0..g.num_groups() {
            let d = g.representative_degree(group);
            assert!(d >= prev, "group {group}: {d} < {prev}");
            prev = d;
        }
    }
}
