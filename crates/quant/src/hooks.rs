//! Forward hooks that insert quantization ops into the GNN forward pass.
//!
//! [`DegreeAwareHook`] implements the paper's method: per-degree-group
//! learnable `(scale, bitwidth)` for hidden feature maps plus per-column
//! 4-bit weight quantization. [`DqHook`] implements the Degree-Quant
//! baseline \[47\]: one uniform bitwidth, per-tensor learnable scales, and
//! stochastic protective masking of high-degree nodes during training.

use std::rc::Rc;

use mega_gnn::ForwardHook;
use mega_graph::Graph;
use mega_tensor::{Matrix, Optimizer, Tape, VarId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::grouping::DegreeGrouping;
use crate::ops::{
    effective_bits, effective_scale, feature_quant_forward, weight_quant_forward, FeatureQuantOp,
    MemoryLossOp, WeightQuantOp, FEATURE_BITS_RANGE,
};
use crate::quantizer::{lsq_init_scale, qmax};

/// Memory-penalty configuration attached to a [`DegreeAwareHook`].
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// Feature dimension of each learnable (hidden) layer.
    pub hidden_dims: Vec<usize>,
    /// Node count per degree group.
    pub group_counts: Vec<usize>,
    /// Constant contribution in bits (calibrated input layer).
    pub constant_bits: f64,
    /// Target memory in KB (Eq. 4's `M_target`).
    pub m_target_kb: f64,
}

/// The Degree-Aware mixed-precision quantization hook (paper §IV).
#[derive(Debug)]
pub struct DegreeAwareHook {
    node_groups: Rc<Vec<u32>>,
    num_groups: usize,
    /// Learnable per-group scales, one table per hidden feature map.
    pub feature_scales: Vec<Matrix>,
    /// Learnable per-group continuous bitwidths, one table per hidden map.
    pub feature_bits: Vec<Matrix>,
    /// Learnable per-column weight scales, one per layer (lazily sized).
    pub weight_scales: Vec<Option<Matrix>>,
    weight_bits: u8,
    scales_initialized: Vec<bool>,
    memory: Option<MemoryConfig>,
    // Recorded per forward pass.
    rec_feature_scale_vars: Vec<Option<VarId>>,
    rec_feature_bit_vars: Vec<Option<VarId>>,
    rec_weight_scale_vars: Vec<Option<VarId>>,
}

impl DegreeAwareHook {
    /// Creates the hook for a model with `num_layers` layers on `graph`.
    ///
    /// `init_bits` seeds every group's continuous bitwidth (the paper starts
    /// high and lets the memory penalty pull it down).
    pub fn new(
        graph: &Graph,
        grouping: &DegreeGrouping,
        num_layers: usize,
        init_bits: f32,
    ) -> Self {
        let num_groups = grouping.num_groups();
        let hidden_maps = num_layers.saturating_sub(1);
        Self {
            node_groups: Rc::new(grouping.node_groups(graph)),
            num_groups,
            feature_scales: vec![Matrix::zeros(1, num_groups); hidden_maps],
            feature_bits: vec![Matrix::full(1, num_groups, init_bits); hidden_maps],
            weight_scales: vec![None; num_layers],
            weight_bits: 4,
            scales_initialized: vec![false; hidden_maps],
            memory: None,
            rec_feature_scale_vars: vec![None; hidden_maps],
            rec_feature_bit_vars: vec![None; hidden_maps],
            rec_weight_scale_vars: vec![None; num_layers],
        }
    }

    /// Attaches the Eq. (4) memory penalty.
    pub fn with_memory(mut self, memory: MemoryConfig) -> Self {
        self.memory = Some(memory);
        self
    }

    /// The node → group map.
    pub fn node_groups(&self) -> &Rc<Vec<u32>> {
        &self.node_groups
    }

    fn memory_op(&self) -> MemoryLossOp {
        let m = self
            .memory
            .as_ref()
            .expect("memory penalty not configured; call with_memory");
        MemoryLossOp {
            layer_dims: m.hidden_dims.iter().map(|&d| d as f64).collect(),
            group_counts: m
                .hidden_dims
                .iter()
                .map(|_| m.group_counts.iter().map(|&c| c as f64).collect())
                .collect(),
            constant_bits: m.constant_bits,
            eta: 8.0 * 1024.0,
            m_target: m.m_target_kb,
        }
    }

    /// Adds the memory-penalty scalar to the tape (call after the forward
    /// pass so the bitwidth variables are recorded).
    ///
    /// # Panics
    ///
    /// Panics if the penalty was not configured or no forward pass ran.
    pub fn memory_penalty(&self, tape: &mut Tape) -> VarId {
        let op = self.memory_op();
        let bit_vars: Vec<VarId> = self
            .rec_feature_bit_vars
            .iter()
            .map(|v| v.expect("forward pass must run before memory_penalty"))
            .collect();
        let tables: Vec<&Matrix> = bit_vars.iter().map(|&v| tape.value(v)).collect();
        let value = op.forward(&tables);
        tape.custom(&bit_vars, value, Box::new(op))
    }

    /// Current implied feature-memory size in KB (Eq. 4's `S/η`).
    pub fn current_size_kb(&self) -> f64 {
        let op = self.memory_op();
        let tables: Vec<&Matrix> = self.feature_bits.iter().collect();
        op.size_kb(&tables)
    }

    /// Applies one optimizer step to the quantization parameters using the
    /// gradients recorded on `tape`, then re-clamps.
    ///
    /// Scales and bitwidths use separate optimizers: bitwidths need a much
    /// larger step (they traverse an integer range of 1..8 within a training
    /// run) than the continuous scales.
    pub fn step(
        &mut self,
        tape: &Tape,
        scale_opt: &mut dyn Optimizer,
        bits_opt: &mut dyn Optimizer,
    ) {
        let grad_of = |tape: &Tape, v: Option<VarId>, like: &Matrix| -> Matrix {
            v.and_then(|v| tape.try_grad(v).cloned())
                .unwrap_or_else(|| Matrix::zeros(like.rows(), like.cols()))
        };
        // Scales (features + weights).
        let mut grads: Vec<Matrix> = Vec::new();
        for (i, m) in self.feature_scales.iter().enumerate() {
            grads.push(grad_of(tape, self.rec_feature_scale_vars[i], m));
        }
        for (i, m) in self.weight_scales.iter().enumerate() {
            if let Some(m) = m {
                grads.push(grad_of(tape, self.rec_weight_scale_vars[i], m));
            }
        }
        let mut params: Vec<&mut Matrix> = Vec::new();
        for m in self.feature_scales.iter_mut() {
            params.push(m);
        }
        for m in self.weight_scales.iter_mut().flatten() {
            params.push(m);
        }
        let refs: Vec<&Matrix> = grads.iter().collect();
        scale_opt.step(&mut params, &refs);
        // Bitwidths.
        let mut bgrads: Vec<Matrix> = Vec::new();
        for (i, m) in self.feature_bits.iter().enumerate() {
            bgrads.push(grad_of(tape, self.rec_feature_bit_vars[i], m));
        }
        let mut bparams: Vec<&mut Matrix> = Vec::new();
        for m in self.feature_bits.iter_mut() {
            bparams.push(m);
        }
        let brefs: Vec<&Matrix> = bgrads.iter().collect();
        bits_opt.step(&mut bparams, &brefs);
        // Clamp bitwidths into the representable range.
        for bits in self.feature_bits.iter_mut() {
            for b in bits.as_mut_slice() {
                *b = b.clamp(FEATURE_BITS_RANGE.0, FEATURE_BITS_RANGE.1);
            }
        }
    }

    /// Rounded per-group bitwidth table of hidden map `i`.
    pub fn bit_table(&self, i: usize) -> Vec<u8> {
        self.feature_bits[i]
            .row(0)
            .iter()
            .map(|&b| effective_bits(b))
            .collect()
    }

    /// Per-node bitwidths of hidden map `i`.
    pub fn node_bits(&self, i: usize) -> Vec<u8> {
        let table = self.bit_table(i);
        self.node_groups
            .iter()
            .map(|&g| table[g as usize])
            .collect()
    }
}

impl ForwardHook for DegreeAwareHook {
    fn begin(&mut self, _tape: &mut Tape) {
        for v in self.rec_feature_scale_vars.iter_mut() {
            *v = None;
        }
        for v in self.rec_feature_bit_vars.iter_mut() {
            *v = None;
        }
        for v in self.rec_weight_scale_vars.iter_mut() {
            *v = None;
        }
    }

    fn transform_weight(&mut self, tape: &mut Tape, layer: usize, w: VarId) -> VarId {
        if self.weight_scales[layer].is_none() {
            // Lazy per-column LSQ init from the first observed weight value.
            let wv = tape.value(w);
            let mut s = Matrix::zeros(1, wv.cols());
            for c in 0..wv.cols() {
                let col = (0..wv.rows()).map(|r| wv.get(r, c));
                s.set(0, c, lsq_init_scale(col, self.weight_bits));
            }
            self.weight_scales[layer] = Some(s);
        }
        let scales = self.weight_scales[layer].clone().expect("just initialized");
        let s_var = tape.param(scales);
        self.rec_weight_scale_vars[layer] = Some(s_var);
        let out = weight_quant_forward(tape.value(w), tape.value(s_var), self.weight_bits);
        tape.custom(
            &[w, s_var],
            out,
            Box::new(WeightQuantOp {
                bits: self.weight_bits,
            }),
        )
    }

    fn transform_activation(&mut self, tape: &mut Tape, layer: usize, h: VarId) -> VarId {
        let i = layer - 1; // activation entering layer `layer`
        if !self.scales_initialized[i] {
            // Per-group LSQ init from the first observed activation.
            let hv = tape.value(h);
            let mut sums = vec![0.0f64; self.num_groups];
            let mut counts = vec![0usize; self.num_groups];
            for (v, &group) in self.node_groups.iter().enumerate() {
                let g = group as usize;
                for &x in hv.row(v) {
                    sums[g] += x.abs() as f64;
                    counts[g] += 1;
                }
            }
            for g in 0..self.num_groups {
                let bits = effective_bits(self.feature_bits[i].get(0, g));
                let mean = if counts[g] == 0 {
                    0.0
                } else {
                    sums[g] / counts[g] as f64
                };
                let s = if mean == 0.0 {
                    1e-3
                } else {
                    (2.0 * mean / (qmax(bits) as f64).sqrt()).max(1e-6)
                };
                self.feature_scales[i].set(0, g, s as f32);
            }
            self.scales_initialized[i] = true;
        }
        let s_var = tape.param(self.feature_scales[i].clone());
        let b_var = tape.param(self.feature_bits[i].clone());
        self.rec_feature_scale_vars[i] = Some(s_var);
        self.rec_feature_bit_vars[i] = Some(b_var);
        let out = feature_quant_forward(
            tape.value(h),
            tape.value(s_var),
            tape.value(b_var),
            &self.node_groups,
        );
        tape.custom(
            &[h, s_var, b_var],
            out,
            Box::new(FeatureQuantOp {
                groups: Rc::clone(&self.node_groups),
                num_groups: self.num_groups,
            }),
        )
    }
}

/// Degree-Quant (DQ) fake quantization with protective masking.
#[derive(Debug)]
struct DqFeatureOp {
    mask: Rc<Vec<bool>>, // true = protected (stays FP32 this step)
    bits: u8,
}

impl mega_tensor::CustomGrad for DqFeatureOp {
    fn backward(
        &self,
        inputs: &[&Matrix],
        _output: &Matrix,
        out_grad: &Matrix,
    ) -> Vec<Option<Matrix>> {
        let (h, scale) = (inputs[0], inputs[1]);
        let alpha = effective_scale(scale.get(0, 0));
        let sign_s = scale.get(0, 0).signum();
        let q = qmax(self.bits) as f32;
        let mut gh = Matrix::zeros(h.rows(), h.cols());
        let mut gs = Matrix::zeros(1, 1);
        let n_quant = self.mask.iter().filter(|&&m| !m).count().max(1);
        let s_norm = 1.0 / (((n_quant * h.cols()) as f32 * q).sqrt().max(1.0));
        for v in 0..h.rows() {
            if self.mask[v] {
                // Protected row: identity op.
                for (c, &g) in out_grad.row(v).iter().enumerate() {
                    gh.set(v, c, g);
                }
                continue;
            }
            for (c, (&x, &g)) in h.row(v).iter().zip(out_grad.row(v)).enumerate() {
                let ratio = x.abs() / alpha;
                let ds = if ratio < q {
                    gh.set(v, c, g);
                    ((ratio + 0.5).floor() - ratio) * x.signum()
                } else {
                    q * x.signum()
                };
                gs.set(0, 0, gs.get(0, 0) + g * ds * s_norm * sign_s);
            }
        }
        vec![Some(gh), Some(gs)]
    }
}

/// The Degree-Quant baseline hook \[47\]: uniform bitwidth with per-tensor
/// learnable scales and stochastic protective masking of high-in-degree
/// nodes during training.
#[derive(Debug)]
pub struct DqHook {
    bits: u8,
    /// Masking probability per node (∝ in-degree percentile, 0..=p_max).
    mask_prob: Vec<f32>,
    /// Per-hidden-map learnable scale.
    pub feature_scales: Vec<Matrix>,
    /// Per-layer learnable per-column weight scales.
    pub weight_scales: Vec<Option<Matrix>>,
    scales_initialized: Vec<bool>,
    /// `true` during training (enables masking).
    pub train_mode: bool,
    epoch_seed: u64,
    rec_feature_scale_vars: Vec<Option<VarId>>,
    rec_weight_scale_vars: Vec<Option<VarId>>,
}

impl DqHook {
    /// Maximum protective-masking probability (DQ's high-degree nodes).
    pub const P_MAX: f32 = 0.2;

    /// Creates a DQ hook quantizing features and weights at `bits`.
    pub fn new(graph: &Graph, num_layers: usize, bits: u8) -> Self {
        // Percentile rank of each node's in-degree.
        let n = graph.num_nodes();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| graph.in_degree(v as usize));
        let mut rank = vec![0.0f32; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v as usize] = i as f32 / n.max(1) as f32;
        }
        let mask_prob = rank.iter().map(|&r| r * Self::P_MAX).collect();
        let hidden_maps = num_layers.saturating_sub(1);
        Self {
            bits,
            mask_prob,
            feature_scales: vec![Matrix::zeros(1, 1); hidden_maps],
            weight_scales: vec![None; num_layers],
            scales_initialized: vec![false; hidden_maps],
            train_mode: true,
            epoch_seed: 0,
            rec_feature_scale_vars: vec![None; hidden_maps],
            rec_weight_scale_vars: vec![None; num_layers],
        }
    }

    /// Uniform bitwidth of this baseline.
    pub fn bits(&self) -> u8 {
        self.bits
    }

    /// Sets the per-epoch seed that drives protective-mask sampling.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch_seed = epoch;
    }

    /// Optimizer step for the learnable scales.
    pub fn step(&mut self, tape: &Tape, opt: &mut dyn Optimizer) {
        let mut grads: Vec<Matrix> = Vec::new();
        let mut params: Vec<&mut Matrix> = Vec::new();
        for (i, m) in self.feature_scales.iter().enumerate() {
            let g = self.rec_feature_scale_vars[i]
                .and_then(|v| tape.try_grad(v).cloned())
                .unwrap_or_else(|| Matrix::zeros(m.rows(), m.cols()));
            grads.push(g);
        }
        for (i, m) in self.weight_scales.iter().enumerate() {
            if let Some(m) = m {
                let g = self.rec_weight_scale_vars[i]
                    .and_then(|v| tape.try_grad(v).cloned())
                    .unwrap_or_else(|| Matrix::zeros(m.rows(), m.cols()));
                grads.push(g);
            }
        }
        for m in self.feature_scales.iter_mut() {
            params.push(m);
        }
        for m in self.weight_scales.iter_mut().flatten() {
            params.push(m);
        }
        let refs: Vec<&Matrix> = grads.iter().collect();
        opt.step(&mut params, &refs);
    }
}

impl ForwardHook for DqHook {
    fn begin(&mut self, _tape: &mut Tape) {
        for v in self.rec_feature_scale_vars.iter_mut() {
            *v = None;
        }
        for v in self.rec_weight_scale_vars.iter_mut() {
            *v = None;
        }
    }

    fn transform_weight(&mut self, tape: &mut Tape, layer: usize, w: VarId) -> VarId {
        if self.weight_scales[layer].is_none() {
            let wv = tape.value(w);
            let mut s = Matrix::zeros(1, wv.cols());
            for c in 0..wv.cols() {
                let col = (0..wv.rows()).map(|r| wv.get(r, c));
                s.set(0, c, lsq_init_scale(col, self.bits));
            }
            self.weight_scales[layer] = Some(s);
        }
        let s_var = tape.param(self.weight_scales[layer].clone().expect("init"));
        self.rec_weight_scale_vars[layer] = Some(s_var);
        let out = weight_quant_forward(tape.value(w), tape.value(s_var), self.bits);
        tape.custom(
            &[w, s_var],
            out,
            Box::new(WeightQuantOp { bits: self.bits }),
        )
    }

    fn transform_activation(&mut self, tape: &mut Tape, layer: usize, h: VarId) -> VarId {
        let i = layer - 1;
        if !self.scales_initialized[i] {
            let hv = tape.value(h);
            let s = lsq_init_scale(hv.as_slice().iter().copied(), self.bits);
            self.feature_scales[i].set(0, 0, s);
            self.scales_initialized[i] = true;
        }
        let s_var = tape.param(self.feature_scales[i].clone());
        self.rec_feature_scale_vars[i] = Some(s_var);
        // Protective mask: sampled fresh per epoch & layer during training.
        let n = tape.value(h).rows();
        let mask: Vec<bool> = if self.train_mode {
            let mut rng = StdRng::seed_from_u64(
                self.epoch_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(layer as u64),
            );
            (0..n)
                .map(|v| rng.gen::<f32>() < self.mask_prob[v])
                .collect()
        } else {
            vec![false; n]
        };
        let mask = Rc::new(mask);
        let hv = tape.value(h);
        let alpha = effective_scale(tape.value(s_var).get(0, 0));
        let q = qmax(self.bits) as f32;
        let mut out = hv.clone();
        for v in 0..n {
            if mask[v] {
                continue;
            }
            for x in out.row_mut(v) {
                let level = (x.abs() / alpha + 0.5).floor().min(q);
                *x = level * alpha * x.signum();
            }
        }
        tape.custom(
            &[h, s_var],
            out,
            Box::new(DqFeatureOp {
                mask,
                bits: self.bits,
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_gnn::{build_adjacency, Gnn, GnnKind, ModelConfig};
    use mega_graph::datasets::DatasetSpec;

    fn setup() -> (mega_graph::Dataset, Gnn, Rc<mega_tensor::CsrMatrix>) {
        let d = DatasetSpec::cora()
            .scaled(0.05)
            .with_feature_dim(48)
            .materialize();
        let cfg = ModelConfig::for_dataset(GnnKind::Gcn, &d);
        let adj = build_adjacency(&d.graph, cfg.kind.aggregator(3));
        (d, Gnn::new(cfg), adj)
    }

    #[test]
    fn degree_aware_hook_quantizes_forward() {
        let (d, model, adj) = setup();
        let grouping = DegreeGrouping::default();
        let mut hook = DegreeAwareHook::new(&d.graph, &grouping, 2, 4.0);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &d, &adj, &mut hook, None);
        let logits = tape.value(out.logits);
        assert!(logits.as_slice().iter().all(|x| x.is_finite()));
        // Scales were lazily initialized.
        assert!(hook.feature_scales[0].max_abs() > 0.0);
    }

    #[test]
    fn degree_aware_memory_penalty_backpropagates_to_bits() {
        let (d, model, adj) = setup();
        let grouping = DegreeGrouping::default();
        let counts = grouping.group_counts(&d.graph);
        let mut hook =
            DegreeAwareHook::new(&d.graph, &grouping, 2, 6.0).with_memory(MemoryConfig {
                hidden_dims: vec![128],
                group_counts: counts,
                constant_bits: 0.0,
                // Absurdly small target => strong downward pressure.
                m_target_kb: 0.5,
            });
        let mut tape = Tape::new();
        let _ = model.forward(&mut tape, &d, &adj, &mut hook, None);
        let mem = hook.memory_penalty(&mut tape);
        assert!(tape.value(mem).get(0, 0) > 0.0);
        tape.backward(mem);
        let before = hook.feature_bits[0].clone();
        let mut sopt = mega_tensor::Sgd::new(0.1).with_momentum(0.0);
        let mut bopt = mega_tensor::Sgd::new(0.5).with_momentum(0.0);
        hook.step(&tape, &mut sopt, &mut bopt);
        let after = &hook.feature_bits[0];
        // At least the populated groups must have moved down.
        let moved = (0..before.cols())
            .filter(|&g| after.get(0, g) < before.get(0, g))
            .count();
        assert!(moved > 0, "no bitwidth moved toward target");
    }

    #[test]
    fn dq_hook_quantizes_all_rows_in_eval_mode() {
        let (d, model, adj) = setup();
        let mut hook = DqHook::new(&d.graph, 2, 4);
        hook.train_mode = false;
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &d, &adj, &mut hook, None);
        assert!(tape
            .value(out.logits)
            .as_slice()
            .iter()
            .all(|x| x.is_finite()));
        assert!(hook.feature_scales[0].get(0, 0) > 0.0);
    }

    #[test]
    fn dq_mask_probability_grows_with_degree() {
        let (d, _, _) = setup();
        let hook = DqHook::new(&d.graph, 2, 4);
        // Max in-degree node has the highest masking probability.
        let vmax = (0..d.graph.num_nodes())
            .max_by_key(|&v| d.graph.in_degree(v))
            .unwrap();
        let vmin = (0..d.graph.num_nodes())
            .min_by_key(|&v| d.graph.in_degree(v))
            .unwrap();
        assert!(hook.mask_prob[vmax] > hook.mask_prob[vmin]);
        assert!(hook
            .mask_prob
            .iter()
            .all(|&p| (0.0..=DqHook::P_MAX).contains(&p)));
    }

    #[test]
    fn hook_step_updates_quant_parameters() {
        let (d, model, adj) = setup();
        let grouping = DegreeGrouping::default();
        let mut hook = DegreeAwareHook::new(&d.graph, &grouping, 2, 4.0);
        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &d, &adj, &mut hook, None);
        let labels = Rc::new(d.labels.clone());
        let idx = Rc::new(d.splits.train.clone());
        let loss = tape.softmax_cross_entropy(out.logits, labels, idx);
        tape.backward(loss);
        let before = hook.feature_scales[0].clone();
        let mut sopt = mega_tensor::Adam::new(0.05);
        let mut bopt = mega_tensor::Adam::new(0.1);
        hook.step(&tape, &mut sopt, &mut bopt);
        assert_ne!(before, hook.feature_scales[0], "scales did not move");
    }
}
