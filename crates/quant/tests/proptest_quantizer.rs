//! Property suite for the Eq. (2) scalar quantizer: round-trip error
//! bounds, exact clip boundaries, the 1-bit special case, and the pin
//! that `mega_format::planes::quantize_level` — a forced duplicate of
//! [`mega_quant::quantizer::quantize`] (the crate DAG runs quant → gnn →
//! format, so format cannot call quant) — never drifts from the original.

use mega_quant::quantizer::{dequantize, fake_quantize, in_range, qmax, quantize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// In-range values round-trip with error at most α/2 (nearest-level
    /// rounding), for every bitwidth.
    #[test]
    fn round_trip_error_is_bounded_by_half_alpha(
        x in -100.0f32..100.0,
        alpha in 0.01f32..10.0,
        bits in 1u8..=16,
    ) {
        if in_range(x, alpha, bits) {
            let err = (x - fake_quantize(x, alpha, bits)).abs();
            prop_assert!(
                err <= alpha / 2.0 + alpha * 1e-5,
                "x={x} alpha={alpha} bits={bits}: err {err} exceeds alpha/2"
            );
        }
    }

    /// Quantization levels always land in `[-qmax, qmax]` and carry the
    /// sign of the input.
    #[test]
    fn levels_are_clamped_and_sign_preserving(
        x in -1e30f32..1e30,
        alpha in 1e-6f32..1e6,
        bits in 1u8..=16,
    ) {
        let level = quantize(x, alpha, bits);
        let q = qmax(bits);
        prop_assert!((-q..=q).contains(&level), "level {level} outside ±{q}");
        if level != 0 {
            prop_assert_eq!(level > 0, x > 0.0, "sign flipped: x={} level={}", x, level);
        }
    }

    /// At the documented clip boundary `|x| = α·(2^{b−1}−1)` the quantizer
    /// saturates to exactly ±qmax (Eq. (2) uses `≥`), and stays saturated
    /// beyond it.
    #[test]
    fn clip_boundary_saturates_exactly(
        alpha in 0.01f32..10.0,
        bits in 2u8..=16,
        beyond in 1.0f32..100.0,
    ) {
        let q = qmax(bits);
        let edge = alpha * q as f32;
        prop_assert_eq!(quantize(edge, alpha, bits), q);
        prop_assert_eq!(quantize(-edge, alpha, bits), -q);
        prop_assert_eq!(quantize(edge * beyond, alpha, bits), q);
        prop_assert_eq!(quantize(-edge * beyond, alpha, bits), -q);
        // Dequantizing the saturated level reconstructs the boundary.
        prop_assert_eq!(dequantize(q, alpha).to_bits(), edge.to_bits());
    }

    /// 1-bit quantization is the paper's ternary special case: levels
    /// `{−1, 0, +1}`, with `|x| ≥ α/2` snapping to sign.
    #[test]
    fn one_bit_is_ternary_sign(
        x in -50.0f32..50.0,
        alpha in 0.01f32..10.0,
    ) {
        let level = quantize(x, alpha, 1);
        prop_assert!((-1..=1).contains(&level));
        if x.abs() >= alpha * 0.5 + alpha * 1e-5 {
            prop_assert_eq!(level, x.signum() as i32, "x={} alpha={}", x, alpha);
        } else if x.abs() < alpha * 0.5 - alpha * 1e-5 {
            prop_assert_eq!(level, 0, "x={} alpha={}", x, alpha);
        }
    }

    /// The duplicated quantizer in `mega_format::planes` is bit-for-bit
    /// the same function: same levels for every (x, α, b), including
    /// saturated and near-boundary inputs.
    #[test]
    fn planes_quantize_level_matches_quantizer(
        x in -1e6f32..1e6,
        alpha in 1e-4f32..1e4,
        bits in 1u8..=mega_format::planes::MAX_PLANE_BITS,
    ) {
        prop_assert_eq!(
            mega_format::planes::quantize_level(x, alpha, bits),
            quantize(x, alpha, bits),
            "implementations diverged at x={} alpha={} bits={}", x, alpha, bits
        );
    }

    /// Same pin at the exact clip boundary and at level midpoints, where a
    /// rounding-rule drift would first show.
    #[test]
    fn planes_quantize_level_matches_at_boundaries(
        alpha in 0.01f32..100.0,
        bits in 1u8..=mega_format::planes::MAX_PLANE_BITS,
        level in 0i32..=255,
    ) {
        let level = level % (qmax(bits) + 1);
        for x in [
            alpha * level as f32,              // exact level
            alpha * (level as f32 + 0.5),      // rounding midpoint
            alpha * qmax(bits) as f32,         // clip edge
        ] {
            for signed in [x, -x] {
                prop_assert_eq!(
                    mega_format::planes::quantize_level(signed, alpha, bits),
                    quantize(signed, alpha, bits),
                    "diverged at x={} alpha={} bits={}", signed, alpha, bits
                );
            }
        }
    }
}

/// `qmax_level` in planes mirrors `qmax` over the plane-representable
/// range (deterministic sweep; no sampling needed).
#[test]
fn qmax_tables_agree() {
    for bits in 1..=mega_format::planes::MAX_PLANE_BITS {
        assert_eq!(mega_format::planes::qmax_level(bits), qmax(bits));
    }
}
