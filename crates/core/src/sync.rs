//! Lock-order-checked synchronization primitives.
//!
//! Drop-in replacements for [`std::sync::Mutex`], [`std::sync::RwLock`]
//! and [`std::sync::Condvar`] that, **in debug builds only**, record the
//! global lock-*acquisition-order* graph and panic the moment any
//! acquisition would close a cycle in it — i.e. before the program can
//! actually deadlock. In release builds every name in this module is a
//! plain re-export of the `std::sync` type: zero wrapper, zero cost.
//!
//! # How the detector works
//!
//! Locks are grouped into **classes** by their creation site (the
//! `#[track_caller]` location of `Mutex::new` / `RwLock::new`): all
//! ticket slots minted by one constructor share a class, the scheduler's
//! bucket map is its own class, and so on. Every time a thread *blocks*
//! on an acquisition while already holding other locks, a directed edge
//! `held-class → acquiring-class` is added to a process-global graph
//! (with the acquiring thread and both call sites kept as the witness).
//! Before the edge is added — and crucially, before the thread blocks —
//! the detector checks whether the reverse direction is already
//! reachable; if it is, two call paths disagree about the order of those
//! classes, which is exactly the ABBA shape that deadlocks under the
//! right interleaving. The panic message names both hold sites and the
//! previously recorded path, so a single test run of *either* path flags
//! the race even though no test interleaves them.
//!
//! Deliberate design points:
//!
//! * `try_lock`/`try_read`/`try_write` push onto the held stack on
//!   success but record **no incoming edge**: a non-blocking attempt can
//!   fail but never deadlock, so e.g. probing a model entry's dirtiness
//!   while holding the artifact-cache map lock is not a violation.
//!   Edges *from* a try-held lock to a later blocking acquisition are
//!   still recorded.
//! * [`Condvar::wait`] keeps the mutex's held-stack entry for the
//!   duration of the wait. The thread is blocked and acquires nothing in
//!   between, and the entry is accurate again the instant the wait
//!   returns with the lock re-held.
//! * Same-class nesting (two locks minted at one creation site) is not
//!   modeled; ordering within a class is the caller's responsibility.
//!
//! # Poison policy
//!
//! The wrappers preserve the `std` poisoning API verbatim
//! ([`LockResult`], [`PoisonError`], …). [`LockResultExt::unpoison`] is
//! the repo-wide recovery idiom: take the guard whether or not a prior
//! holder panicked. Serving code should prefer
//! `mega_serve::poison::recover`, which additionally reports the
//! component on `/healthz`.

use std::any::Any;

pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult, WaitTimeoutResult};

#[cfg(not(debug_assertions))]
pub use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

#[cfg(debug_assertions)]
pub use checked::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Snapshot of the lock-order graph ([`order_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderStats {
    /// Distinct lock classes (creation sites) seen so far.
    pub classes: usize,
    /// Distinct acquisition-order edges recorded so far.
    pub edges: usize,
}

/// Counters from the global lock-order graph.
///
/// Debug builds report live numbers; release builds (where the detector
/// compiles away) always report zeros. Tests use this to prove the
/// detector is actually running — `edges > 0` after exercising the serve
/// engine means the instrumented wrappers, not the raw `std` types, are
/// on the hot path.
pub fn order_stats() -> OrderStats {
    #[cfg(debug_assertions)]
    {
        checked::stats()
    }
    #[cfg(not(debug_assertions))]
    {
        OrderStats {
            classes: 0,
            edges: 0,
        }
    }
}

/// Extracts the panic message from a [`std::thread::JoinHandle`] error.
///
/// Convenience for tests that assert on detector panics.
pub fn panic_message(payload: Box<dyn Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "<non-string panic payload>".to_string(),
        },
    }
}

/// Recovery idiom for poisoned locks: take the guard regardless.
///
/// A poisoned lock only means some thread panicked while holding it; the
/// protected data is still structurally valid for every type in this
/// repo (counters, maps, rings). Serving code must not let that take the
/// process down — recover the guard and keep serving.
pub trait LockResultExt {
    /// The guard type on the `Ok` path.
    type Guard;
    /// Returns the guard, ignoring poison.
    fn unpoison(self) -> Self::Guard;
}

impl<G> LockResultExt for Result<G, PoisonError<G>> {
    type Guard = G;
    fn unpoison(self) -> G {
        self.unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(debug_assertions)]
mod checked {
    //! The instrumented primitives (debug builds only). See the module
    //! docs for the detection model.

    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::fmt;
    use std::ops::{Deref, DerefMut};
    use std::panic::Location;
    use std::sync as sys;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{LockResult, OnceLock, PoisonError, TryLockError, TryLockResult};
    use std::time::Duration;

    type ClassId = usize;

    /// Who recorded an order edge, and where.
    struct EdgeWitness {
        held_at: &'static Location<'static>,
        acquired_at: &'static Location<'static>,
        thread: String,
    }

    #[derive(Default)]
    struct Graph {
        /// Creation site per class id.
        class_sites: Vec<&'static Location<'static>>,
        /// Interning: creation site -> class id.
        class_ids: HashMap<(&'static str, u32, u32), ClassId>,
        /// Recorded order edges with their first witness.
        edges: HashMap<(ClassId, ClassId), EdgeWitness>,
        /// Adjacency view of `edges` for reachability walks.
        adj: HashMap<ClassId, Vec<ClassId>>,
    }

    impl Graph {
        /// A path `from -> ... -> to` through recorded edges, if any.
        fn path(&self, from: ClassId, to: ClassId) -> Option<Vec<ClassId>> {
            let mut prev: HashMap<ClassId, ClassId> = HashMap::new();
            let mut queue = std::collections::VecDeque::from([from]);
            while let Some(node) = queue.pop_front() {
                if node == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = prev[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                for &next in self.adj.get(&node).into_iter().flatten() {
                    if next != from && !prev.contains_key(&next) {
                        prev.insert(next, node);
                        queue.push_back(next);
                    }
                }
            }
            None
        }
    }

    fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
        static GRAPH: OnceLock<sys::Mutex<Graph>> = OnceLock::new();
        let mut graph = GRAPH
            .get_or_init(|| sys::Mutex::new(Graph::default()))
            .lock()
            // A detector panic poisons this lock; later acquisitions must
            // keep working so the rest of the suite still gets checked.
            .unwrap_or_else(PoisonError::into_inner);
        f(&mut graph)
    }

    fn register_class(site: &'static Location<'static>) -> ClassId {
        with_graph(|graph| {
            let key = (site.file(), site.line(), site.column());
            if let Some(&id) = graph.class_ids.get(&key) {
                return id;
            }
            let id = graph.class_sites.len();
            graph.class_sites.push(site);
            graph.class_ids.insert(key, id);
            id
        })
    }

    /// One lock currently held by this thread.
    struct Held {
        class: ClassId,
        at: &'static Location<'static>,
        token: u64,
    }

    thread_local! {
        static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    }

    fn next_token() -> u64 {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    }

    /// Records `held -> class` edges for everything this thread holds and
    /// panics if any of them closes a cycle. Runs *before* blocking on
    /// the lock, so the panic preempts the deadlock it predicts.
    fn check_order(class: ClassId, at: &'static Location<'static>) {
        HELD.with(|held| {
            let held = held.borrow();
            if held.is_empty() {
                return;
            }
            with_graph(|graph| {
                for hl in held.iter() {
                    if hl.class == class || graph.edges.contains_key(&(hl.class, class)) {
                        continue;
                    }
                    if let Some(path) = graph.path(class, hl.class) {
                        let mut msg = format!(
                            "lock-order cycle detected (potential deadlock):\n  \
                             thread '{}' is acquiring {} (at {}) while holding {} (acquired at {})\n  \
                             but the reverse order is already established:",
                            thread_name(),
                            site(graph, class),
                            at,
                            site(graph, hl.class),
                            hl.at,
                        );
                        for pair in path.windows(2) {
                            let witness = &graph.edges[&(pair[0], pair[1])];
                            msg.push_str(&format!(
                                "\n    {} -> {}: thread '{}' held it (acquired at {}) \
                                 then acquired the other at {}",
                                site(graph, pair[0]),
                                site(graph, pair[1]),
                                witness.thread,
                                witness.held_at,
                                witness.acquired_at,
                            ));
                        }
                        panic!("{msg}");
                    }
                    graph.edges.insert(
                        (hl.class, class),
                        EdgeWitness {
                            held_at: hl.at,
                            acquired_at: at,
                            thread: thread_name(),
                        },
                    );
                    graph.adj.entry(hl.class).or_default().push(class);
                }
            });
        });
    }

    fn site(graph: &Graph, class: ClassId) -> String {
        format!("lock class [{}]", graph.class_sites[class])
    }

    fn thread_name() -> String {
        std::thread::current()
            .name()
            .unwrap_or("<unnamed>")
            .to_string()
    }

    fn push_held(class: ClassId, at: &'static Location<'static>) -> u64 {
        let token = next_token();
        HELD.with(|held| held.borrow_mut().push(Held { class, at, token }));
        token
    }

    fn release(token: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().rposition(|h| h.token == token) {
                held.remove(pos);
            }
        });
    }

    pub(super) fn stats() -> super::OrderStats {
        with_graph(|graph| super::OrderStats {
            classes: graph.class_sites.len(),
            edges: graph.edges.len(),
        })
    }

    /// Order-checked [`std::sync::Mutex`].
    pub struct Mutex<T: ?Sized> {
        class: ClassId,
        inner: sys::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex; the call site defines its lock class.
        #[track_caller]
        pub fn new(value: T) -> Self {
            Self {
                class: register_class(Location::caller()),
                inner: sys::Mutex::new(value),
            }
        }

        /// Consumes the mutex, returning the underlying data.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Blocking acquisition; checks and records lock order first.
        #[track_caller]
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            let at = Location::caller();
            check_order(self.class, at);
            match self.inner.lock() {
                Ok(guard) => Ok(MutexGuard {
                    inner: Some(guard),
                    token: push_held(self.class, at),
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    token: push_held(self.class, at),
                })),
            }
        }

        /// Non-blocking acquisition; records no incoming order edge (a
        /// failed try cannot deadlock).
        #[track_caller]
        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            let at = Location::caller();
            match self.inner.try_lock() {
                Ok(guard) => Ok(MutexGuard {
                    inner: Some(guard),
                    token: push_held(self.class, at),
                }),
                Err(TryLockError::Poisoned(poisoned)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        inner: Some(poisoned.into_inner()),
                        token: push_held(self.class, at),
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }
    }

    impl<T: Default> Default for Mutex<T> {
        #[track_caller]
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Guard for [`Mutex`]; releases the held-stack entry on drop.
    pub struct MutexGuard<'a, T: ?Sized + 'a> {
        /// `None` only transiently, while a [`Condvar`] wait owns the
        /// underlying guard (the held-stack entry stays live).
        inner: Option<sys::MutexGuard<'a, T>>,
        token: u64,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.inner.as_ref().expect("guard taken by condvar wait")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.inner.as_mut().expect("guard taken by condvar wait")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            if self.inner.is_some() {
                release(self.token);
            }
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// Order-checked [`std::sync::RwLock`].
    ///
    /// Read acquisitions participate in order tracking exactly like
    /// writes: a read can still block (writer held / writer queued), so
    /// read-side edges are real deadlock edges.
    pub struct RwLock<T: ?Sized> {
        class: ClassId,
        inner: sys::RwLock<T>,
    }

    impl<T> RwLock<T> {
        /// Creates a new lock; the call site defines its lock class.
        #[track_caller]
        pub fn new(value: T) -> Self {
            Self {
                class: register_class(Location::caller()),
                inner: sys::RwLock::new(value),
            }
        }

        /// Consumes the lock, returning the underlying data.
        pub fn into_inner(self) -> LockResult<T> {
            self.inner.into_inner()
        }
    }

    impl<T: ?Sized> RwLock<T> {
        /// Blocking shared acquisition; checks and records lock order.
        #[track_caller]
        pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
            let at = Location::caller();
            check_order(self.class, at);
            match self.inner.read() {
                Ok(guard) => Ok(RwLockReadGuard {
                    inner: guard,
                    token: push_held(self.class, at),
                }),
                Err(poisoned) => Err(PoisonError::new(RwLockReadGuard {
                    inner: poisoned.into_inner(),
                    token: push_held(self.class, at),
                })),
            }
        }

        /// Blocking exclusive acquisition; checks and records lock order.
        #[track_caller]
        pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
            let at = Location::caller();
            check_order(self.class, at);
            match self.inner.write() {
                Ok(guard) => Ok(RwLockWriteGuard {
                    inner: guard,
                    token: push_held(self.class, at),
                }),
                Err(poisoned) => Err(PoisonError::new(RwLockWriteGuard {
                    inner: poisoned.into_inner(),
                    token: push_held(self.class, at),
                })),
            }
        }

        /// Non-blocking shared acquisition; no incoming order edge.
        #[track_caller]
        pub fn try_read(&self) -> TryLockResult<RwLockReadGuard<'_, T>> {
            let at = Location::caller();
            match self.inner.try_read() {
                Ok(guard) => Ok(RwLockReadGuard {
                    inner: guard,
                    token: push_held(self.class, at),
                }),
                Err(TryLockError::Poisoned(poisoned)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockReadGuard {
                        inner: poisoned.into_inner(),
                        token: push_held(self.class, at),
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }

        /// Non-blocking exclusive acquisition; no incoming order edge.
        #[track_caller]
        pub fn try_write(&self) -> TryLockResult<RwLockWriteGuard<'_, T>> {
            let at = Location::caller();
            match self.inner.try_write() {
                Ok(guard) => Ok(RwLockWriteGuard {
                    inner: guard,
                    token: push_held(self.class, at),
                }),
                Err(TryLockError::Poisoned(poisoned)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(RwLockWriteGuard {
                        inner: poisoned.into_inner(),
                        token: push_held(self.class, at),
                    })))
                }
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
            }
        }
    }

    impl<T: Default> Default for RwLock<T> {
        #[track_caller]
        fn default() -> Self {
            Self::new(T::default())
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            self.inner.fmt(f)
        }
    }

    /// Shared guard for [`RwLock`].
    pub struct RwLockReadGuard<'a, T: ?Sized + 'a> {
        inner: sys::RwLockReadGuard<'a, T>,
        token: u64,
    }

    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
        fn drop(&mut self) {
            release(self.token);
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// Exclusive guard for [`RwLock`].
    pub struct RwLockWriteGuard<'a, T: ?Sized + 'a> {
        inner: sys::RwLockWriteGuard<'a, T>,
        token: u64,
    }

    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }

    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }

    impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
        fn drop(&mut self) {
            release(self.token);
        }
    }

    impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            (**self).fmt(f)
        }
    }

    /// Order-checked [`std::sync::Condvar`] companion.
    ///
    /// The mutex's held-stack entry stays live across a wait: the thread
    /// is blocked in between, and the lock is re-held the moment the
    /// wait returns.
    #[derive(Default)]
    pub struct Condvar {
        inner: sys::Condvar,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub fn new() -> Self {
            Self::default()
        }

        /// See [`std::sync::Condvar::wait`].
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            let token = guard.token;
            let inner = guard.inner.take().expect("guard taken by condvar wait");
            drop(guard); // inner is None: the held-stack entry survives
            match self.inner.wait(inner) {
                Ok(inner) => Ok(MutexGuard {
                    inner: Some(inner),
                    token,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    inner: Some(poisoned.into_inner()),
                    token,
                })),
            }
        }

        /// See [`std::sync::Condvar::wait_timeout`].
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, super::WaitTimeoutResult)> {
            let token = guard.token;
            let inner = guard.inner.take().expect("guard taken by condvar wait");
            drop(guard); // inner is None: the held-stack entry survives
            match self.inner.wait_timeout(inner, dur) {
                Ok((inner, timeout)) => Ok((
                    MutexGuard {
                        inner: Some(inner),
                        token,
                    },
                    timeout,
                )),
                Err(poisoned) => {
                    let (inner, timeout) = poisoned.into_inner();
                    Err(PoisonError::new((
                        MutexGuard {
                            inner: Some(inner),
                            token,
                        },
                        timeout,
                    )))
                }
            }
        }

        /// See [`std::sync::Condvar::notify_one`].
        pub fn notify_one(&self) {
            self.inner.notify_one();
        }

        /// See [`std::sync::Condvar::notify_all`].
        pub fn notify_all(&self) {
            self.inner.notify_all();
        }
    }

    impl fmt::Debug for Condvar {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Condvar").finish_non_exhaustive()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_rwlock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock().unpoison() += 1;
        assert_eq!(*m.lock().unpoison(), 2);
        let rw = RwLock::new(vec![1, 2]);
        rw.write().unpoison().push(3);
        assert_eq!(rw.read().unpoison().len(), 3);
        assert!(rw.try_read().is_ok());
    }

    #[test]
    fn consistent_nesting_never_panics() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let (a, b) = (a.clone(), b.clone());
            handles.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    let ga = a.lock().unpoison();
                    let gb = b.lock().unpoison();
                    drop(gb);
                    drop(ga);
                }
            }));
        }
        for h in handles {
            h.join()
                .expect("consistent order must not trip the detector");
        }
    }

    #[test]
    fn condvar_wait_delivers_notification() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiter = {
            let pair = pair.clone();
            std::thread::spawn(move || {
                let (lock, cv) = &*pair;
                let mut ready = lock.lock().unpoison();
                while !*ready {
                    ready = cv.wait(ready).unpoison();
                }
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        let (lock, cv) = &*pair;
        *lock.lock().unpoison() = true;
        cv.notify_all();
        waiter.join().unwrap();

        // wait_timeout on a never-notified condvar times out cleanly.
        let m = Mutex::new(());
        let cv = Condvar::new();
        let guard = m.lock().unpoison();
        let (_guard, timeout) = cv.wait_timeout(guard, Duration::from_millis(1)).unpoison();
        assert!(timeout.timed_out());
    }

    #[test]
    fn unpoison_recovers_a_poisoned_lock() {
        let m = Arc::new(Mutex::new(41u32));
        let poisoner = {
            let m = m.clone();
            std::thread::spawn(move || {
                let _guard = m.lock().unpoison();
                panic!("poison it");
            })
        };
        assert!(poisoner.join().is_err());
        assert!(m.lock().is_err(), "lock should report poison");
        let mut guard = m.lock().unpoison();
        *guard += 1;
        assert_eq!(*guard, 42);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn abba_cycle_panics_with_both_hold_sites() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));

        // Establish A -> B on one thread...
        {
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _ga = a.lock().unpoison();
                let _gb = b.lock().unpoison();
            })
            .join()
            .unwrap();
        }

        // ...then B -> A on another. The check fires before blocking, so
        // this is deterministic: no interleaving is required.
        let err = {
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _gb = b.lock().unpoison();
                let _ga = a.lock().unpoison();
            })
            .join()
            .expect_err("reverse acquisition order must panic")
        };
        let msg = panic_message(err);
        assert!(
            msg.contains("lock-order cycle detected"),
            "unexpected message: {msg}"
        );
        assert!(msg.contains("while holding"), "missing hold site: {msg}");
        // Both classes' creation sites (this file) and the prior
        // thread's witness must be in the report.
        assert!(
            msg.matches("sync.rs").count() >= 2,
            "expected both hold sites in: {msg}"
        );
        assert!(
            msg.contains("reverse order is already established"),
            "missing established-order witness: {msg}"
        );
    }

    #[cfg(debug_assertions)]
    #[test]
    fn try_lock_records_no_incoming_edge() {
        let a = Arc::new(Mutex::new(0u32));
        let b = Arc::new(Mutex::new(0u32));

        // Holding A, *try*-lock B: must not record A -> B.
        {
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _ga = a.lock().unpoison();
                let _gb = b.try_lock().expect("uncontended");
            })
            .join()
            .unwrap();
        }

        // So the blocking order B -> A is still free to establish itself.
        {
            let (a, b) = (a.clone(), b.clone());
            std::thread::spawn(move || {
                let _gb = b.lock().unpoison();
                let _ga = a.lock().unpoison();
            })
            .join()
            .expect("try-lock must not have recorded the reverse edge");
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    fn order_stats_sees_recorded_edges() {
        let before = order_stats();
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        let _go = outer.lock().unpoison();
        let _gi = inner.lock().unpoison();
        let after = order_stats();
        assert!(after.classes >= before.classes + 2);
        assert!(after.edges > before.edges);
    }

    /// In release builds the "wrappers" must literally be the std types:
    /// same `TypeId`, zero added cost.
    #[cfg(not(debug_assertions))]
    #[test]
    fn release_mode_is_a_std_reexport() {
        use std::any::TypeId;
        assert_eq!(
            TypeId::of::<Mutex<u8>>(),
            TypeId::of::<std::sync::Mutex<u8>>()
        );
        assert_eq!(
            TypeId::of::<RwLock<u8>>(),
            TypeId::of::<std::sync::RwLock<u8>>()
        );
        assert_eq!(TypeId::of::<Condvar>(), TypeId::of::<std::sync::Condvar>());
        assert_eq!(
            order_stats(),
            OrderStats {
                classes: 0,
                edges: 0
            }
        );
    }
}
