//! The paper's evaluation suite: the ten (dataset, model) workloads of
//! Figs. 14/16/17 and a comparison runner.

use mega_gnn::GnnKind;
use mega_graph::datasets::DatasetSpec;
use mega_graph::Dataset;
use mega_sim::{geomean, Accelerator, RunResult};

use crate::workloads::{build_fp32, build_quantized, build_uniform};

/// The ten workloads of the evaluation section: GCN on all five datasets,
/// GIN on the citation graphs, GraphSage on Cora and Reddit.
pub fn paper_workloads() -> Vec<(DatasetSpec, GnnKind)> {
    vec![
        (DatasetSpec::cora(), GnnKind::Gcn),
        (DatasetSpec::citeseer(), GnnKind::Gcn),
        (DatasetSpec::pubmed(), GnnKind::Gcn),
        (DatasetSpec::nell(), GnnKind::Gcn),
        (DatasetSpec::reddit_scaled(), GnnKind::Gcn),
        (DatasetSpec::cora(), GnnKind::Gin),
        (DatasetSpec::citeseer(), GnnKind::Gin),
        (DatasetSpec::pubmed(), GnnKind::Gin),
        (DatasetSpec::cora(), GnnKind::GraphSage),
        (DatasetSpec::reddit_scaled(), GnnKind::GraphSage),
    ]
}

/// A scaled-down version of [`paper_workloads`] for tests and smoke runs.
pub fn paper_workloads_scaled(factor: f64) -> Vec<(DatasetSpec, GnnKind)> {
    paper_workloads()
        .into_iter()
        .map(|(spec, kind)| {
            let name = spec.name.clone();
            let mut scaled = spec.scaled(factor);
            scaled.name = name;
            (scaled, kind)
        })
        .collect()
}

/// One workload's results across all compared accelerators.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Dataset name.
    pub dataset: String,
    /// Model name.
    pub model: String,
    /// Results keyed by accelerator display name.
    pub results: Vec<RunResult>,
}

impl Comparison {
    /// The result of a named accelerator.
    pub fn result(&self, name: &str) -> Option<&RunResult> {
        self.results.iter().find(|r| r.accelerator == name)
    }

    /// Speedup of `name` normalized to `baseline` (Fig. 14's y-axis with
    /// `baseline = "HyGCN"`).
    pub fn speedup(&self, name: &str, baseline: &str) -> Option<f64> {
        Some(self.result(name)?.speedup_over(self.result(baseline)?))
    }

    /// DRAM-access reduction of `name` vs `baseline` (Fig. 16).
    pub fn dram_reduction(&self, name: &str, baseline: &str) -> Option<f64> {
        Some(
            self.result(name)?
                .dram_reduction_over(self.result(baseline)?),
        )
    }

    /// Energy saving of `name` vs `baseline` (Fig. 17).
    pub fn energy_saving(&self, name: &str, baseline: &str) -> Option<f64> {
        Some(
            self.result(name)?
                .energy_saving_over(self.result(baseline)?),
        )
    }
}

/// Runs the full comparison on one dataset/model: every 32-bit baseline on
/// the FP32 workload, the 8-bit variants on the INT8 workload, MEGA on the
/// mixed-precision workload.
pub fn compare_all(dataset: &Dataset, kind: GnnKind) -> Comparison {
    use mega_accel::{Mega, MegaConfig};
    use mega_baselines::{Gcnax, Grow, HyGcn, Sgcn};

    let fp32 = build_fp32(dataset, kind);
    let int8 = build_uniform(dataset, kind, 8);
    let mixed = build_quantized(dataset, kind, None);

    let results = vec![
        HyGcn::matched().run(&fp32),
        Gcnax::matched().run(&fp32),
        Grow::matched().run(&fp32),
        Sgcn::matched().run(&fp32),
        HyGcn::matched_8bit().run(&int8),
        Gcnax::matched_8bit().run(&int8),
        Mega::new(MegaConfig::default()).run(&mixed),
    ];
    Comparison {
        dataset: dataset.spec.name.clone(),
        model: kind.name().to_string(),
        results,
    }
}

/// Geometric-mean speedups of `name` over `baseline` across comparisons.
pub fn geomean_speedup(comparisons: &[Comparison], name: &str, baseline: &str) -> f64 {
    let values: Vec<f64> = comparisons
        .iter()
        .filter_map(|c| c.speedup(name, baseline))
        .collect();
    geomean(&values)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_lists_ten_workloads() {
        let w = paper_workloads();
        assert_eq!(w.len(), 10);
        let gcn = w.iter().filter(|(_, k)| *k == GnnKind::Gcn).count();
        assert_eq!(gcn, 5);
    }

    #[test]
    fn comparison_runs_all_seven_accelerators() {
        let d = DatasetSpec::cora().scaled(0.08).materialize();
        let c = compare_all(&d, GnnKind::Gcn);
        assert_eq!(c.results.len(), 7);
        assert!(c.result("MEGA").is_some());
        assert!(c.result("HyGCN(8bit)").is_some());
    }

    #[test]
    fn mega_wins_on_small_cora() {
        let d = DatasetSpec::cora().scaled(0.08).materialize();
        let c = compare_all(&d, GnnKind::Gcn);
        for baseline in ["HyGCN", "GCNAX", "GROW", "SGCN"] {
            let s = c.speedup("MEGA", baseline).unwrap();
            assert!(s > 1.0, "MEGA not faster than {baseline}: {s}");
            let dr = c.dram_reduction("MEGA", baseline).unwrap();
            assert!(dr > 1.0, "MEGA moves more DRAM than {baseline}: {dr}");
            let es = c.energy_saving("MEGA", baseline).unwrap();
            assert!(es > 1.0, "MEGA burns more energy than {baseline}: {es}");
        }
    }

    #[test]
    fn geomean_across_two_workloads() {
        let d1 = DatasetSpec::cora().scaled(0.08).materialize();
        let d2 = DatasetSpec::citeseer().scaled(0.08).materialize();
        let cs = vec![
            compare_all(&d1, GnnKind::Gcn),
            compare_all(&d2, GnnKind::Gcn),
        ];
        let g = geomean_speedup(&cs, "MEGA", "HyGCN");
        assert!(g > 1.0);
    }
}
