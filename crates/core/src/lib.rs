//! # MEGA — full-system reproduction of the HPCA 2024 paper
//!
//! *MEGA: A Memory-Efficient GNN Accelerator Exploiting Degree-Aware
//! Mixed-Precision Quantization* (Zhu, Li, Li, et al., HPCA 2024,
//! arXiv:2311.09775).
//!
//! This facade crate ties the workspace together:
//!
//! | Piece | Crate | Paper section |
//! |---|---|---|
//! | Graphs & synthetic Table II datasets | [`mega_graph`] | §VI-A-1 |
//! | Tensors & autograd | `mega_tensor` | (substrate) |
//! | GCN / GIN / GraphSAGE / GAT | [`mega_gnn`] | Table III, §VII-3 |
//! | Degree-Aware quantization + DQ baseline | [`mega_quant`] | §IV |
//! | Adaptive-Package format | `mega_format` | §V-B |
//! | METIS-like partitioner | `mega_partition` | §V-E |
//! | DRAM / energy / area models | `mega_hw` | §VI-A-3 |
//! | Simulation framework | [`mega_sim`] | §VI-A-3 |
//! | The MEGA accelerator | [`mega_accel`] | §V |
//! | HyGCN / GCNAX / GROW / SGCN | [`mega_baselines`] | §VI-A-2 |
//!
//! plus the high-level helpers used by the examples and the benchmark
//! harness:
//!
//! * [`workloads`] — turn a dataset + model (+ learned bit assignment) into
//!   the hardware [`mega_sim::Workload`];
//! * [`suite`] — the paper's ten evaluation workloads and the comparison
//!   runner behind Figs. 14/16/17.
//!
//! ## Quickstart
//!
//! ```
//! use mega::prelude::*;
//! use mega_sim::Accelerator;
//!
//! // A small synthetic citation graph (Cora recipe, scaled down).
//! let dataset = DatasetSpec::cora().scaled(0.1).materialize();
//! // Hardware workload with the degree-aware mixed-precision profile.
//! let workload = mega::workloads::build_quantized(&dataset, GnnKind::Gcn, None);
//! // Run MEGA and a baseline, compare.
//! let mega_result = Mega::new(MegaConfig::default()).run(&workload);
//! let fp32 = mega::workloads::build_fp32(&dataset, GnnKind::Gcn);
//! let hygcn_result = HyGcn::matched().run(&fp32);
//! assert!(mega_result.speedup_over(&hygcn_result) > 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suite;
pub mod sync;
pub mod workloads;

pub use mega_accel::{CondenseMode, FeatureStorage, Mega, MegaConfig};
pub use mega_baselines::{Gcnax, Grow, HyGcn, Sgcn};
pub use mega_graph::{Dataset, DatasetSpec, DynamicGraph, Graph, GraphDelta};
pub use mega_quant::{QatConfig, QatOutcome, QatTrainer};
pub use mega_sim::{Accelerator, RunResult, Workload};

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use mega_accel::{CondenseMode, FeatureStorage, Mega, MegaConfig};
    pub use mega_baselines::{Gcnax, Grow, HyGcn, Sgcn};
    pub use mega_gnn::{DynAdjacency, GnnKind, Trainer};
    pub use mega_graph::datasets::DatasetSpec;
    pub use mega_graph::{DynamicGraph, GraphDelta};
    pub use mega_quant::{QatConfig, QatTrainer};
    pub use mega_sim::{geomean, Accelerator, RunResult, Workload};
}
