//! Workload construction: from datasets (and optionally QAT outcomes) to
//! the hardware simulators' [`Workload`] spec.
//!
//! Two paths exist, mirroring how the paper's hardware evaluation works:
//!
//! 1. **From a QAT run** — [`build_quantized`] with a [`BitAssignment`]
//!    carries the *learned* per-node bitwidths into the simulator.
//! 2. **Profile-based** — for the datasets where training at full scale is
//!    out of budget (NELL's 61k-dim features, Reddit), [`degree_profile_bits`]
//!    synthesizes the same *kind* of assignment the training produces: low
//!    bitwidths for the power-law majority, more bits for high-in-degree
//!    nodes. DESIGN.md §1 records this substitution.
//!
//! Hidden feature-map densities default to the Fig. 5 measurements of the
//! paper (per dataset × model), so hardware runs do not require forward
//! passes on huge graphs.

use std::rc::Rc;

use mega_gnn::{GnnKind, ModelConfig};
use mega_graph::{Dataset, Graph};
use mega_quant::BitAssignment;
use mega_sim::Workload;

/// Hidden-layer feature density by (dataset, model), from the paper's
/// Fig. 5. Falls back to 0.5 for unknown pairs.
pub fn hidden_density(dataset: &str, kind: GnnKind) -> f64 {
    let by_dataset: [(&str, [f64; 3]); 5] = [
        // (dataset, [GCN, GIN, GraphSage]) densities from Fig. 5.
        ("Cora", [0.44, 0.63, 0.79]),
        ("CiteSeer", [0.55, 0.79, 0.88]),
        ("PubMed", [0.41, 0.84, 0.71]),
        ("NELL", [0.12, 0.33, 0.56]),
        ("Reddit", [0.54, 0.19, 0.51]),
    ];
    let idx = match kind {
        GnnKind::Gcn => 0,
        GnnKind::Gin => 1,
        GnnKind::GraphSage => 2,
    };
    by_dataset
        .iter()
        .find(|(name, _)| *name == dataset)
        .map(|(_, d)| d[idx])
        .unwrap_or(0.5)
}

/// Synthesizes a degree-aware bitwidth profile: the shape Degree-Aware QAT
/// learns — 2–3 bits for the low-degree majority, more for rare
/// high-in-degree nodes. Delegates to the shared
/// [`mega_quant::DegreePolicy`] so offline workload construction and the
/// online serving engine (`mega-serve`) agree on the mapping.
pub fn degree_profile_bits(graph: &Graph) -> Vec<u8> {
    mega_quant::DegreePolicy::paper_default().profile(graph)
}

/// Rescales a bit profile toward a target element-weighted average (used by
/// the Fig. 22 compression-ratio sweep). Bits stay within `1..=8`.
pub fn scale_bits_to_average(bits: &[u8], target_avg: f64) -> Vec<u8> {
    if bits.is_empty() {
        return Vec::new();
    }
    let current: f64 = bits.iter().map(|&b| b as f64).sum::<f64>() / bits.len() as f64;
    let shift = target_avg - current;
    bits.iter()
        .map(|&b| (b as f64 + shift).round().clamp(1.0, 8.0) as u8)
        .collect()
}

/// Layer dimensions of `kind` on `dataset` (Table III).
pub fn layer_dims(dataset: &Dataset, kind: GnnKind) -> Vec<usize> {
    let cfg = ModelConfig::for_dataset(kind, dataset);
    let mut dims = vec![cfg.in_dim];
    for (_, out) in cfg.layer_dims() {
        dims.push(out);
    }
    dims
}

/// Per-layer input densities: the dataset's input density followed by the
/// Fig. 5 hidden density for the remaining layers.
pub fn layer_densities(dataset: &Dataset, kind: GnnKind) -> Vec<f64> {
    let dims = layer_dims(dataset, kind);
    let hidden = hidden_density(&dataset.spec.name, kind);
    let mut densities = vec![dataset.spec.feature_density];
    densities.extend(std::iter::repeat_n(hidden, dims.len() - 2));
    densities
}

/// Builds the FP32 workload used by the 32-bit baselines.
pub fn build_fp32(dataset: &Dataset, kind: GnnKind) -> Workload {
    let dims = layer_dims(dataset, kind);
    let densities = layer_densities(dataset, kind);
    Workload::uniform(
        dataset.spec.name.clone(),
        kind.name(),
        Rc::new(dataset.graph.clone()),
        &dims,
        &densities,
        32,
        32,
    )
}

/// Builds a uniform-precision workload (the DQ-INT8 baselines at 8 bits).
pub fn build_uniform(dataset: &Dataset, kind: GnnKind, bits: u8) -> Workload {
    let dims = layer_dims(dataset, kind);
    let densities = layer_densities(dataset, kind);
    Workload::uniform(
        dataset.spec.name.clone(),
        kind.name(),
        Rc::new(dataset.graph.clone()),
        &dims,
        &densities,
        bits,
        bits,
    )
}

/// Builds MEGA's mixed-precision workload.
///
/// With `assignment = Some(..)` the learned per-node bitwidths from QAT are
/// used (layer count must match); otherwise the degree profile stands in.
///
/// # Panics
///
/// Panics if the assignment's node count or layer count mismatches.
pub fn build_quantized(
    dataset: &Dataset,
    kind: GnnKind,
    assignment: Option<&BitAssignment>,
) -> Workload {
    let dims = layer_dims(dataset, kind);
    let densities = layer_densities(dataset, kind);
    let n = dataset.graph.num_nodes();
    let layer_bits: Vec<Vec<u8>> = match assignment {
        Some(a) => {
            assert_eq!(a.num_nodes(), n, "assignment node count mismatch");
            assert_eq!(
                a.num_layers(),
                dims.len() - 1,
                "assignment layer count mismatch"
            );
            (0..a.num_layers())
                .map(|l| a.layer_bits(l).to_vec())
                .collect()
        }
        None => {
            let profile = degree_profile_bits(&dataset.graph);
            let mut layers = Vec::with_capacity(dims.len() - 1);
            // Input features of binary/bag-of-words datasets quantize to
            // 1-2 bits regardless of degree; hidden maps use the profile.
            let input_bits: Vec<u8> = if dataset.spec.feature_density < 0.05 {
                vec![1; n]
            } else {
                profile.clone()
            };
            layers.push(input_bits);
            for _ in 1..dims.len() - 1 {
                layers.push(profile.clone());
            }
            layers
        }
    };
    Workload::mixed(
        dataset.spec.name.clone(),
        kind.name(),
        Rc::new(dataset.graph.clone()),
        &dims,
        &densities,
        layer_bits,
        4,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::datasets::DatasetSpec;

    fn tiny() -> Dataset {
        DatasetSpec::cora().scaled(0.08).materialize()
    }

    #[test]
    fn fig5_densities_are_wired() {
        assert!((hidden_density("Cora", GnnKind::Gcn) - 0.44).abs() < 1e-12);
        assert!((hidden_density("Reddit", GnnKind::Gin) - 0.19).abs() < 1e-12);
        assert_eq!(hidden_density("Unknown", GnnKind::Gcn), 0.5);
    }

    #[test]
    fn degree_profile_increases_with_degree() {
        let d = tiny();
        let bits = degree_profile_bits(&d.graph);
        let vmax = (0..d.graph.num_nodes())
            .max_by_key(|&v| d.graph.in_degree(v))
            .unwrap();
        let vmin = (0..d.graph.num_nodes())
            .min_by_key(|&v| d.graph.in_degree(v))
            .unwrap();
        assert!(bits[vmax] > bits[vmin]);
        let avg: f64 = bits.iter().map(|&b| b as f64).sum::<f64>() / bits.len() as f64;
        assert!(avg < 4.0, "profile average {avg} too high for power law");
    }

    #[test]
    fn scaling_hits_requested_average() {
        let bits = vec![2u8, 3, 3, 4];
        let scaled = scale_bits_to_average(&bits, 6.0);
        let avg: f64 = scaled.iter().map(|&b| b as f64).sum::<f64>() / scaled.len() as f64;
        assert!((avg - 6.0).abs() < 0.6, "avg {avg}");
    }

    #[test]
    fn workload_builders_agree_on_shape() {
        let d = tiny();
        let fp32 = build_fp32(&d, GnnKind::Gcn);
        let quant = build_quantized(&d, GnnKind::Gcn, None);
        assert_eq!(fp32.layers.len(), quant.layers.len());
        assert_eq!(fp32.layers[0].in_dim, quant.layers[0].in_dim);
        assert_eq!(fp32.layers[0].input_bits[0], 32);
        assert!(quant.layers[0].input_bits[0] <= 8);
        assert_eq!(quant.layers[0].weight_bits, 4);
    }

    #[test]
    fn table_iii_dims() {
        let d = tiny();
        assert_eq!(layer_dims(&d, GnnKind::Gcn), vec![1433, 128, 7]);
        assert_eq!(layer_dims(&d, GnnKind::GraphSage), vec![1433, 256, 7]);
    }

    #[test]
    fn binary_inputs_get_one_bit() {
        let d = tiny();
        let w = build_quantized(&d, GnnKind::Gcn, None);
        assert!(w.layers[0].input_bits.iter().all(|&b| b == 1));
        assert!(w.layers[1].input_bits.iter().all(|&b| (2..=8).contains(&b)));
    }
}
