//! Cycle-level simulation framework shared by the MEGA accelerator model
//! and the four baseline simulators.
//!
//! The paper evaluates all accelerators with cycle-accurate simulators that
//! share one DRAM model and matched on-chip budgets (§VI-A-3). This crate
//! provides the common scaffolding:
//!
//! * [`Workload`] — a GNN inference job: graph + per-layer dimensions,
//!   per-node feature bitwidths, and feature-map densities;
//! * [`pipeline`] — the compute/DRAM overlap model that turns per-phase
//!   compute cycles and a DRAM trace into total cycles and *stall* cycles
//!   (the quantity behind Fig. 1 and Fig. 20a);
//! * [`Accelerator`] — the trait every simulator implements, returning a
//!   [`RunResult`] with cycles, DRAM statistics, and the four-way energy
//!   breakdown.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pipeline;
pub mod result;
pub mod workload;

pub use pipeline::{overlap, PhaseCycles, PipelineStats};
pub use result::{geomean, Accelerator, RunResult};
pub use workload::{LayerSpec, Workload};
