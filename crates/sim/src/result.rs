//! Simulation results and the `Accelerator` trait.

use mega_hw::{DramStats, EnergyBreakdown};

use crate::pipeline::PipelineStats;
use crate::workload::Workload;

/// The complete outcome of simulating one workload on one accelerator.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Accelerator name.
    pub accelerator: String,
    /// Workload identity `dataset/model`.
    pub workload: String,
    /// Timing.
    pub cycles: PipelineStats,
    /// DRAM traffic counters.
    pub dram: DramStats,
    /// Energy split (DRAM/SRAM/PU/leakage).
    pub energy: EnergyBreakdown,
}

impl RunResult {
    /// Speedup of this run versus a baseline run of the same workload.
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.cycles.total_cycles as f64 / self.cycles.total_cycles.max(1) as f64
    }

    /// DRAM-access reduction versus a baseline (by bytes moved).
    pub fn dram_reduction_over(&self, baseline: &RunResult) -> f64 {
        baseline.dram.total_bytes() as f64 / self.dram.total_bytes().max(1) as f64
    }

    /// Energy saving versus a baseline.
    pub fn energy_saving_over(&self, baseline: &RunResult) -> f64 {
        baseline.energy.total_pj() / self.energy.total_pj().max(1e-12)
    }
}

/// A cycle-level accelerator simulator.
pub trait Accelerator {
    /// Display name ("MEGA", "HyGCN", ...).
    fn name(&self) -> &str;

    /// Simulates one full inference of `workload`.
    fn run(&self, workload: &Workload) -> RunResult;
}

/// Geometric mean of positive values (0 on an empty input).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(cycles: u64, bytes: u64, pj: f64) -> RunResult {
        RunResult {
            accelerator: "A".into(),
            workload: "W".into(),
            cycles: PipelineStats {
                total_cycles: cycles,
                compute_cycles: cycles / 2,
                dram_cycles: cycles / 2,
                stall_cycles: 0,
            },
            dram: DramStats {
                bytes_read: bytes,
                useful_bytes: bytes,
                ..Default::default()
            },
            energy: EnergyBreakdown {
                dram_pj: pj,
                ..Default::default()
            },
        }
    }

    #[test]
    fn relative_metrics() {
        let fast = result(100, 10, 1.0);
        let slow = result(1000, 100, 10.0);
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-12);
        assert!((fast.dram_reduction_over(&slow) - 10.0).abs() < 1e-12);
        assert!((fast.energy_saving_over(&slow) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_mixed_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }
}
