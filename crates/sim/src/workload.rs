//! The workload specification consumed by every accelerator simulator.

use std::rc::Rc;

use mega_graph::Graph;

/// One GNN layer as seen by the hardware: a combination (`X·W`) followed by
/// an aggregation (`Ã·(XW)`), per the paper's `A(XW)` execution order.
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// Feature dimension entering the combination.
    pub in_dim: usize,
    /// Feature dimension after the combination.
    pub out_dim: usize,
    /// Per-node bitwidth of the input feature map (1..=8 quantized, 32 for
    /// FP32 baselines).
    pub input_bits: Vec<u8>,
    /// Density of the input feature map (fraction of non-zeros).
    pub input_density: f64,
    /// Weight bitwidth (4 in MEGA; 32/8 in baselines).
    pub weight_bits: u8,
}

impl LayerSpec {
    /// Mean input bitwidth over nodes.
    pub fn mean_input_bits(&self) -> f64 {
        if self.input_bits.is_empty() {
            return 0.0;
        }
        self.input_bits.iter().map(|&b| b as f64).sum::<f64>() / self.input_bits.len() as f64
    }

    /// Size in bits of node `v`'s input feature row, counting only
    /// non-zeros at the node's own bitwidth.
    pub fn node_row_bits(&self, v: usize) -> u64 {
        let nnz = (self.in_dim as f64 * self.input_density).ceil() as u64;
        nnz * self.input_bits[v] as u64
    }

    /// Dense FP32 bytes of one input row (what non-compressing baselines
    /// move).
    pub fn dense_row_bytes(&self, bits: u8) -> u64 {
        (self.in_dim as u64 * bits as u64).div_ceil(8)
    }

    /// Total input feature-map size in bytes under a *uniform* bitwidth
    /// with no sparsity (dense formats).
    pub fn dense_input_bytes(&self, bits: u8) -> u64 {
        self.input_bits.len() as u64 * self.dense_row_bytes(bits)
    }

    /// Total input feature-map size in bytes under per-node bitwidths and
    /// sparsity (the ideal compressed size; format overheads are added by
    /// each simulator).
    pub fn compressed_input_bytes(&self) -> u64 {
        let bits: u64 = (0..self.input_bits.len())
            .map(|v| self.node_row_bits(v))
            .sum();
        bits.div_ceil(8)
    }
}

/// A complete inference workload.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Dataset name (for reports).
    pub dataset: String,
    /// Model name ("GCN", "GIN", "GraphSage").
    pub model: String,
    /// The graph (shared, read-only).
    pub graph: Rc<Graph>,
    /// The layers in execution order.
    pub layers: Vec<LayerSpec>,
}

impl Workload {
    /// Builds a uniform-precision workload (baselines / FP32).
    ///
    /// `dims` is `[in, hidden, ..., out]`; `densities[l]` is the density of
    /// the feature map entering layer `l`.
    ///
    /// # Panics
    ///
    /// Panics if `dims.len() < 2` or densities length mismatches.
    pub fn uniform(
        dataset: impl Into<String>,
        model: impl Into<String>,
        graph: Rc<Graph>,
        dims: &[usize],
        densities: &[f64],
        feature_bits: u8,
        weight_bits: u8,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        assert_eq!(densities.len(), dims.len() - 1, "densities per layer");
        let n = graph.num_nodes();
        let layers = dims
            .windows(2)
            .zip(densities)
            .map(|(w, &density)| LayerSpec {
                in_dim: w[0],
                out_dim: w[1],
                input_bits: vec![feature_bits; n],
                input_density: density,
                weight_bits,
            })
            .collect();
        Self {
            dataset: dataset.into(),
            model: model.into(),
            graph,
            layers,
        }
    }

    /// Builds a mixed-precision workload from per-layer per-node bitwidths.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn mixed(
        dataset: impl Into<String>,
        model: impl Into<String>,
        graph: Rc<Graph>,
        dims: &[usize],
        densities: &[f64],
        layer_bits: Vec<Vec<u8>>,
        weight_bits: u8,
    ) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        assert_eq!(densities.len(), dims.len() - 1, "densities per layer");
        assert_eq!(layer_bits.len(), dims.len() - 1, "bit tables per layer");
        let n = graph.num_nodes();
        let layers = dims
            .windows(2)
            .zip(densities)
            .zip(layer_bits)
            .map(|((w, &density), bits)| {
                assert_eq!(bits.len(), n, "bit table length");
                LayerSpec {
                    in_dim: w[0],
                    out_dim: w[1],
                    input_bits: bits,
                    input_density: density,
                    weight_bits,
                }
            })
            .collect();
        Self {
            dataset: dataset.into(),
            model: model.into(),
            graph,
            layers,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }

    /// Combination MACs of layer `l` when feature sparsity is exploited.
    pub fn combination_macs_sparse(&self, l: usize) -> u64 {
        let layer = &self.layers[l];
        let nnz = (self.num_nodes() as f64 * layer.in_dim as f64 * layer.input_density).ceil();
        (nnz * layer.out_dim as f64) as u64
    }

    /// Combination MACs of layer `l` with dense compute.
    pub fn combination_macs_dense(&self, l: usize) -> u64 {
        let layer = &self.layers[l];
        (self.num_nodes() * layer.in_dim * layer.out_dim) as u64
    }

    /// Aggregation MACs of layer `l` under the `A(XW)` order (one MAC per
    /// edge per output feature, plus the self contribution).
    pub fn aggregation_macs(&self, l: usize) -> u64 {
        let layer = &self.layers[l];
        ((self.num_edges() + self.num_nodes()) * layer.out_dim) as u64
    }

    /// Aggregation MACs when aggregating *input* features (the `(AX)W`
    /// order HyGCN uses) — far more work when `in_dim ≫ out_dim`.
    pub fn aggregation_macs_ax_order(&self, l: usize) -> u64 {
        let layer = &self.layers[l];
        ((self.num_edges() + self.num_nodes()) * layer.in_dim) as u64
    }

    /// Weight bytes of layer `l`.
    pub fn weight_bytes(&self, l: usize) -> u64 {
        let layer = &self.layers[l];
        (layer.in_dim as u64 * layer.out_dim as u64 * layer.weight_bits as u64).div_ceil(8)
    }

    /// Adjacency bytes (CSC: column pointers + row indices, 4 B each).
    pub fn adjacency_bytes(&self) -> u64 {
        ((self.num_nodes() + 1) * 4 + self.num_edges() * 4) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::generate::uniform_random;

    fn workload() -> Workload {
        let g = Rc::new(uniform_random(100, 500, 1));
        Workload::uniform("Test", "GCN", g, &[64, 16, 4], &[0.5, 0.6], 32, 32)
    }

    #[test]
    fn uniform_builder_shapes() {
        let w = workload();
        assert_eq!(w.layers.len(), 2);
        assert_eq!(w.layers[0].in_dim, 64);
        assert_eq!(w.layers[0].out_dim, 16);
        assert_eq!(w.layers[1].in_dim, 16);
        assert_eq!(w.layers[0].input_bits.len(), 100);
    }

    #[test]
    fn mac_counts_follow_definitions() {
        let w = workload();
        assert_eq!(w.combination_macs_dense(0), 100 * 64 * 16);
        assert_eq!(
            w.combination_macs_sparse(0),
            (100.0 * 64.0 * 0.5 * 16.0) as u64
        );
        let e = w.num_edges() as u64;
        assert_eq!(w.aggregation_macs(0), (e + 100) * 16);
        assert_eq!(w.aggregation_macs_ax_order(0), (e + 100) * 64);
    }

    #[test]
    fn ax_order_is_more_expensive_when_input_is_wide() {
        let w = workload();
        assert!(w.aggregation_macs_ax_order(0) > w.aggregation_macs(0));
    }

    #[test]
    fn byte_accounting() {
        let w = workload();
        assert_eq!(w.weight_bytes(0), 64 * 16 * 4);
        assert_eq!(w.adjacency_bytes(), (101 * 4 + w.num_edges() * 4) as u64);
        let l = &w.layers[0];
        assert_eq!(l.dense_row_bytes(32), 256);
        assert_eq!(l.dense_input_bytes(32), 25_600);
    }

    #[test]
    fn compressed_bytes_scale_with_bits_and_density() {
        let g = Rc::new(uniform_random(10, 20, 2));
        let low = Workload::mixed(
            "T",
            "GCN",
            Rc::clone(&g),
            &[100, 10],
            &[0.1],
            vec![vec![2; 10]],
            4,
        );
        let high = Workload::mixed("T", "GCN", g, &[100, 10], &[0.1], vec![vec![8; 10]], 4);
        assert_eq!(
            high.layers[0].compressed_input_bytes(),
            4 * low.layers[0].compressed_input_bytes()
        );
    }

    #[test]
    fn mean_bits() {
        let l = LayerSpec {
            in_dim: 4,
            out_dim: 2,
            input_bits: vec![2, 4, 6],
            input_density: 1.0,
            weight_bits: 4,
        };
        assert!((l.mean_input_bits() - 4.0).abs() < 1e-12);
    }
}
