//! The compute/DRAM overlap model.
//!
//! All simulators reduce a layer to "compute is busy for `C` cycles, DRAM is
//! busy for `M` cycles" and an *overlap factor* describing how well the
//! microarchitecture hides memory behind compute (ping-pong buffers,
//! prefetch depth, decoupled engines). Total time is
//!
//! ```text
//! total = max(C, M) + (1 − overlap) · min(C, M)
//! ```
//!
//! `overlap = 1` is a perfectly double-buffered design; `overlap = 0`
//! serializes phases. Stall cycles — the paper's "DRAM access stall cycle"
//! of Fig. 1/Fig. 20a — are whatever exceeds compute: `total − C`.

/// Compute/memory busy cycles of one phase (or one layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCycles {
    /// Cycles the processing units are busy.
    pub compute: u64,
    /// Cycles the DRAM is busy serving this phase.
    pub memory: u64,
}

/// Aggregated timing of a full run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Total execution cycles.
    pub total_cycles: u64,
    /// Cycles the processing units were busy.
    pub compute_cycles: u64,
    /// Cycles the DRAM was busy.
    pub dram_cycles: u64,
    /// Cycles stalled waiting on DRAM (total − compute).
    pub stall_cycles: u64,
}

impl PipelineStats {
    /// Fraction of total cycles spent stalled on DRAM.
    pub fn stall_fraction(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.stall_cycles as f64 / self.total_cycles as f64
        }
    }

    /// Sums another phase's stats (phases execute back-to-back).
    pub fn merge(&mut self, other: &PipelineStats) {
        self.total_cycles += other.total_cycles;
        self.compute_cycles += other.compute_cycles;
        self.dram_cycles += other.dram_cycles;
        self.stall_cycles += other.stall_cycles;
    }
}

/// Applies the overlap model to one phase.
///
/// # Panics
///
/// Panics if `overlap` is outside `[0, 1]`.
pub fn overlap(phase: PhaseCycles, overlap: f64) -> PipelineStats {
    assert!(
        (0.0..=1.0).contains(&overlap),
        "overlap factor {overlap} outside [0,1]"
    );
    let c = phase.compute;
    let m = phase.memory;
    let hidden = (c.min(m) as f64 * overlap) as u64;
    let total = c + m - hidden;
    PipelineStats {
        total_cycles: total,
        compute_cycles: c,
        dram_cycles: m,
        stall_cycles: total - c,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_overlap_takes_the_max() {
        let s = overlap(
            PhaseCycles {
                compute: 100,
                memory: 60,
            },
            1.0,
        );
        assert_eq!(s.total_cycles, 100);
        assert_eq!(s.stall_cycles, 0);
    }

    #[test]
    fn memory_bound_phase_stalls() {
        let s = overlap(
            PhaseCycles {
                compute: 40,
                memory: 100,
            },
            1.0,
        );
        assert_eq!(s.total_cycles, 100);
        assert_eq!(s.stall_cycles, 60);
        assert!((s.stall_fraction() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn zero_overlap_serializes() {
        let s = overlap(
            PhaseCycles {
                compute: 40,
                memory: 100,
            },
            0.0,
        );
        assert_eq!(s.total_cycles, 140);
        assert_eq!(s.stall_cycles, 100);
    }

    #[test]
    fn partial_overlap_interpolates() {
        let s = overlap(
            PhaseCycles {
                compute: 100,
                memory: 100,
            },
            0.5,
        );
        assert_eq!(s.total_cycles, 150);
    }

    #[test]
    fn merge_sums_phases() {
        let mut a = overlap(
            PhaseCycles {
                compute: 10,
                memory: 20,
            },
            1.0,
        );
        let b = overlap(
            PhaseCycles {
                compute: 30,
                memory: 5,
            },
            1.0,
        );
        a.merge(&b);
        assert_eq!(a.total_cycles, 50);
        assert_eq!(a.compute_cycles, 40);
        assert_eq!(a.stall_cycles, 10);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn invalid_overlap_panics() {
        let _ = overlap(PhaseCycles::default(), 1.5);
    }
}
