//! Property-based tests of the DRAM model: conservation laws that must hold
//! for any access pattern.

use mega_hw::{DramConfig, DramSim};
use proptest::prelude::*;

fn arb_accesses() -> impl Strategy<Value = Vec<(u64, u64, bool)>> {
    proptest::collection::vec((0u64..1 << 24, 1u64..4096, proptest::bool::ANY), 1..64)
}

proptest! {
    #[test]
    fn bytes_moved_cover_bytes_requested(accesses in arb_accesses()) {
        let mut d = DramSim::new(DramConfig::default());
        for &(addr, bytes, write) in &accesses {
            if write {
                d.write(addr, bytes);
            } else {
                d.read(addr, bytes);
            }
        }
        let s = d.stats();
        // Every byte asked for was transferred (transactions round up).
        prop_assert!(s.useful_bytes <= s.total_bytes());
        let requested: u64 = accesses.iter().map(|a| a.1).sum();
        prop_assert_eq!(s.useful_bytes, requested);
        // Transactions are whole.
        prop_assert_eq!(s.total_bytes() % 64, 0);
        prop_assert_eq!(
            s.total_bytes(),
            (s.read_transactions + s.write_transactions) * 64
        );
    }

    #[test]
    fn hits_plus_misses_equal_transactions(accesses in arb_accesses()) {
        let mut d = DramSim::new(DramConfig::default());
        for &(addr, bytes, write) in &accesses {
            if write {
                d.write(addr, bytes);
            } else {
                d.read(addr, bytes);
            }
        }
        let s = d.stats();
        prop_assert_eq!(
            s.row_hits + s.row_misses,
            s.read_transactions + s.write_transactions
        );
    }

    #[test]
    fn busy_cycles_monotone_in_work(accesses in arb_accesses()) {
        let mut partial = DramSim::new(DramConfig::default());
        let mut full = DramSim::new(DramConfig::default());
        let half = accesses.len() / 2;
        for (i, &(addr, bytes, write)) in accesses.iter().enumerate() {
            if write {
                full.write(addr, bytes);
                if i < half {
                    partial.write(addr, bytes);
                }
            } else {
                full.read(addr, bytes);
                if i < half {
                    partial.read(addr, bytes);
                }
            }
        }
        prop_assert!(full.busy_cycles() >= partial.busy_cycles());
        prop_assert!(full.energy_pj() >= partial.energy_pj());
    }

    #[test]
    fn utilization_is_a_fraction(accesses in arb_accesses()) {
        let mut d = DramSim::new(DramConfig::default());
        for &(addr, bytes, write) in &accesses {
            if write {
                d.write(addr, bytes);
            } else {
                d.read(addr, bytes);
            }
        }
        let u = d.stats().utilization();
        prop_assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn streaming_fast_path_conserves_bytes(start in 0u64..1 << 20, kb in 64u64..4096) {
        // Large streams take the analytic path; small ones the per-txn path.
        // Totals must agree with the request either way.
        let bytes = kb * 1024;
        let mut d = DramSim::new(DramConfig::default());
        d.read(start, bytes);
        let s = d.stats();
        prop_assert_eq!(s.useful_bytes, bytes);
        prop_assert!(s.bytes_read >= bytes);
        prop_assert!(s.bytes_read - bytes < 128, "waste bounded by alignment");
        prop_assert_eq!(s.row_hits + s.row_misses, s.read_transactions);
    }
}
