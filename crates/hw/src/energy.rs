//! Per-operation energy at 28 nm and the four-way energy breakdown.
//!
//! Per-op numbers follow the Horowitz ISSCC'14 table scaled to 28 nm — the
//! same lineage the paper's "convert the arithmetic operation to BitOP"
//! normalization implies (a 32-bit fixed-point multiply ≡ 1024 BitOPs).

/// Per-operation energies in pJ.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyTable {
    /// 8-bit integer add.
    pub int8_add: f64,
    /// 16-bit integer add.
    pub int16_add: f64,
    /// 32-bit integer add.
    pub int32_add: f64,
    /// FP32 add.
    pub fp32_add: f64,
    /// 8-bit integer multiply.
    pub int8_mult: f64,
    /// 16-bit integer multiply.
    pub int16_mult: f64,
    /// 32-bit integer multiply.
    pub int32_mult: f64,
    /// FP32 multiply.
    pub fp32_mult: f64,
    /// One bit-serial engine beat (AND + accumulate register write).
    pub bitop: f64,
    /// SRAM access per byte at a 64 KB reference macro (scaled by
    /// [`crate::area::sram_energy_scale`] for other sizes).
    pub sram_pj_per_byte_64kb: f64,
    /// Leakage power in mW per mm² of logic+SRAM.
    pub leakage_mw_per_mm2: f64,
}

impl Default for EnergyTable {
    fn default() -> Self {
        Self {
            int8_add: 0.03,
            int16_add: 0.05,
            int32_add: 0.1,
            fp32_add: 0.9,
            int8_mult: 0.2,
            int16_mult: 0.6,
            int32_mult: 3.1,
            fp32_mult: 3.7,
            // 32-bit fixed multiply ≡ 1024 BitOPs (paper §VI-A-3).
            bitop: 3.1 / 1024.0,
            sram_pj_per_byte_64kb: 0.25,
            leakage_mw_per_mm2: 8.0,
        }
    }
}

impl EnergyTable {
    /// Energy of one multiply-accumulate at the given integer bitwidth
    /// (mult + add at the next-wider accumulator).
    pub fn int_mac(&self, bits: u8) -> f64 {
        match bits {
            0..=8 => self.int8_mult + self.int16_add,
            9..=16 => self.int16_mult + self.int32_add,
            _ => self.int32_mult + self.int32_add,
        }
    }

    /// Energy of one FP32 multiply-accumulate.
    pub fn fp32_mac(&self) -> f64 {
        self.fp32_mult + self.fp32_add
    }
}

/// Accumulated energy split into the paper's Fig. 18 categories.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Off-chip DRAM access energy (pJ).
    pub dram_pj: f64,
    /// On-chip SRAM access energy (pJ).
    pub sram_pj: f64,
    /// Processing-unit (arithmetic) energy (pJ).
    pub pu_pj: f64,
    /// Leakage energy (pJ).
    pub leakage_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj + self.sram_pj + self.pu_pj + self.leakage_pj
    }

    /// Total energy in µJ.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }

    /// Adds leakage for `cycles` at 1 GHz given the chip area
    /// (`leakage_mw × cycles` pJ, since 1 mW for 1 ns is 1 pJ).
    pub fn add_leakage(&mut self, table: &EnergyTable, area_mm2: f64, cycles: u64) {
        self.leakage_pj += table.leakage_mw_per_mm2 * area_mm2 * cycles as f64;
    }

    /// Component-wise sum.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.dram_pj += other.dram_pj;
        self.sram_pj += other.sram_pj;
        self.pu_pj += other.pu_pj;
        self.leakage_pj += other.leakage_pj;
    }

    /// Fractions `[dram, sram, pu, leakage]` of the total.
    pub fn fractions(&self) -> [f64; 4] {
        let t = self.total_pj().max(1e-12);
        [
            self.dram_pj / t,
            self.sram_pj / t,
            self.pu_pj / t,
            self.leakage_pj / t,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_cheaper_than_float() {
        let t = EnergyTable::default();
        assert!(t.int_mac(8) < t.fp32_mac() / 5.0);
        assert!(t.int_mac(32) < t.fp32_mac());
    }

    #[test]
    fn bitop_normalization_matches_paper() {
        let t = EnergyTable::default();
        // 1024 BitOPs ≡ one 32-bit multiply.
        assert!((t.bitop * 1024.0 - t.int32_mult).abs() < 1e-9);
    }

    #[test]
    fn mac_energy_monotone_in_bitwidth() {
        let t = EnergyTable::default();
        assert!(t.int_mac(4) <= t.int_mac(12));
        assert!(t.int_mac(12) <= t.int_mac(32));
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let mut b = EnergyBreakdown {
            dram_pj: 70.0,
            sram_pj: 20.0,
            pu_pj: 10.0,
            leakage_pj: 0.0,
        };
        assert_eq!(b.total_pj(), 100.0);
        let f = b.fractions();
        assert!((f[0] - 0.7).abs() < 1e-12);
        b.merge(&b.clone());
        assert_eq!(b.total_pj(), 200.0);
    }

    #[test]
    fn leakage_scales_with_area_and_time() {
        let t = EnergyTable::default();
        let mut b = EnergyBreakdown::default();
        b.add_leakage(&t, 2.0, 1000);
        assert!((b.leakage_pj - 8.0 * 2.0 * 1000.0).abs() < 1e-9);
    }
}
