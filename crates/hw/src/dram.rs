//! Transaction-level HBM model.
//!
//! Behavioural contract (all the paper's DRAM analyses reduce to these two
//! facts):
//!
//! 1. every access fetches whole transactions (64 B) — an irregular gather
//!    that uses 32 B of a transaction wastes half its bandwidth (the
//!    Fig. 12 example);
//! 2. sequential streams hit open rows and run at peak bandwidth, while
//!    scattered accesses pay a row-activation penalty per miss, tracked
//!    per bank.

/// Static configuration of the DRAM model.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Number of independent channels (HBM1.0: 8).
    pub channels: usize,
    /// Banks per channel.
    pub banks_per_channel: usize,
    /// Row-buffer size per bank, bytes.
    pub row_bytes: u64,
    /// Transaction (burst) granularity, bytes.
    pub transaction_bytes: u64,
    /// Aggregate peak bandwidth in bytes per accelerator cycle
    /// (256 GB/s at 1 GHz = 256 B/cycle).
    pub peak_bytes_per_cycle: f64,
    /// Extra channel-occupancy cycles on a row miss (activate+precharge).
    pub row_miss_penalty: u64,
    /// Access energy per bit (HyGCN methodology, ~7 pJ/bit for HBM).
    pub energy_pj_per_bit: f64,
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            channels: 8,
            banks_per_channel: 16,
            row_bytes: 1024,
            transaction_bytes: 64,
            peak_bytes_per_cycle: 256.0,
            row_miss_penalty: 22,
            energy_pj_per_bit: 7.0,
        }
    }
}

/// Counters accumulated over a simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DramStats {
    /// Read transactions issued.
    pub read_transactions: u64,
    /// Write transactions issued.
    pub write_transactions: u64,
    /// Bytes actually transferred (always a multiple of the transaction
    /// size).
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Bytes the requester asked for (≤ transferred; the gap is waste).
    pub useful_bytes: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses.
    pub row_misses: u64,
}

impl DramStats {
    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_read + self.bytes_written
    }

    /// Fraction of transferred bytes the requester actually used.
    pub fn utilization(&self) -> f64 {
        if self.total_bytes() == 0 {
            1.0
        } else {
            self.useful_bytes as f64 / self.total_bytes() as f64
        }
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.read_transactions += other.read_transactions;
        self.write_transactions += other.write_transactions;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.useful_bytes += other.useful_bytes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
    }
}

/// The DRAM simulator: open-row tracking per (channel, bank) plus the
/// accumulated [`DramStats`].
#[derive(Debug, Clone)]
pub struct DramSim {
    config: DramConfig,
    open_rows: Vec<Option<u64>>,
    stats: DramStats,
}

impl DramSim {
    /// New simulator with all rows closed.
    pub fn new(config: DramConfig) -> Self {
        let slots = config.channels * config.banks_per_channel;
        Self {
            config,
            open_rows: vec![None; slots],
            stats: DramStats::default(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    fn touch(&mut self, addr: u64) -> bool {
        // Channels interleave at row granularity so sequential streams keep
        // row-buffer locality (transaction-granularity interleave would give
        // each channel only a couple of beats per row).
        let row_global = addr / self.config.row_bytes;
        let channel = (row_global as usize) % self.config.channels;
        let row_in_channel = row_global / self.config.channels as u64;
        let bank = (row_in_channel as usize) % self.config.banks_per_channel;
        let slot = channel * self.config.banks_per_channel + bank;
        let row = row_in_channel / self.config.banks_per_channel as u64;
        let hit = self.open_rows[slot] == Some(row);
        self.open_rows[slot] = Some(row);
        if hit {
            self.stats.row_hits += 1;
        } else {
            self.stats.row_misses += 1;
        }
        hit
    }

    /// Reads `bytes` useful bytes starting at `addr`; whole transactions
    /// are fetched.
    pub fn read(&mut self, addr: u64, bytes: u64) {
        self.access(addr, bytes, false);
    }

    /// Writes `bytes` useful bytes starting at `addr`.
    pub fn write(&mut self, addr: u64, bytes: u64) {
        self.access(addr, bytes, true);
    }

    fn access(&mut self, addr: u64, bytes: u64, is_write: bool) {
        if bytes == 0 {
            return;
        }
        let tx = self.config.transaction_bytes;
        let first = addr / tx * tx;
        let last = (addr + bytes - 1) / tx * tx;
        let transactions;
        // Large sequential streams are costed analytically: touching each
        // transaction individually is O(bytes/64) and workloads stream up to
        // terabytes (weight-tiling spills). A sequential stream opens each
        // row once; everything else hits.
        let stream_threshold = self.config.row_bytes * 64;
        if bytes >= stream_threshold {
            transactions = (last - first) / tx + 1;
            let rows =
                (addr + bytes - 1) / self.config.row_bytes - addr / self.config.row_bytes + 1;
            self.stats.row_misses += rows;
            self.stats.row_hits += transactions - rows.min(transactions);
            // Open-row state after the stream: its final row per bank is a
            // second-order effect; leave prior state (next random access
            // will almost surely miss anyway).
        } else {
            let mut a = first;
            let mut count = 0u64;
            while a <= last {
                self.touch(a);
                count += 1;
                a += tx;
            }
            transactions = count;
        }
        let moved = transactions * tx;
        self.stats.useful_bytes += bytes;
        if is_write {
            self.stats.write_transactions += transactions;
            self.stats.bytes_written += moved;
        } else {
            self.stats.read_transactions += transactions;
            self.stats.bytes_read += moved;
        }
    }

    /// DRAM busy time in cycles: bandwidth-bound transfer time plus
    /// channel-shared row-miss overhead.
    pub fn busy_cycles(&self) -> u64 {
        let transfer =
            (self.stats.total_bytes() as f64 / self.config.peak_bytes_per_cycle).ceil() as u64;
        let miss_overhead =
            self.stats.row_misses * self.config.row_miss_penalty / self.config.channels as u64;
        transfer + miss_overhead
    }

    /// Total DRAM access energy in pJ.
    pub fn energy_pj(&self) -> f64 {
        self.stats.total_bytes() as f64 * 8.0 * self.config.energy_pj_per_bit
    }

    /// Resets statistics and row state.
    pub fn reset(&mut self) {
        self.stats = DramStats::default();
        for r in self.open_rows.iter_mut() {
            *r = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_read_fetches_whole_transaction() {
        let mut d = DramSim::new(DramConfig::default());
        d.read(100, 4);
        assert_eq!(d.stats().bytes_read, 64);
        assert_eq!(d.stats().useful_bytes, 4);
        assert!((d.stats().utilization() - 4.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn unaligned_read_spans_two_transactions() {
        let mut d = DramSim::new(DramConfig::default());
        d.read(60, 8); // crosses the 64B boundary
        assert_eq!(d.stats().read_transactions, 2);
        assert_eq!(d.stats().bytes_read, 128);
    }

    #[test]
    fn sequential_stream_mostly_hits_rows() {
        let mut d = DramSim::new(DramConfig::default());
        for i in 0..1024u64 {
            d.read(i * 64, 64);
        }
        let s = d.stats();
        // One miss per newly-opened row per bank; the rest hit.
        assert!(
            s.row_hits > s.row_misses * 5,
            "hits {} misses {}",
            s.row_hits,
            s.row_misses
        );
    }

    #[test]
    fn random_gather_mostly_misses_rows() {
        let mut d = DramSim::new(DramConfig::default());
        // Stride far past the row size with a pattern that revisits banks.
        for i in 0..512u64 {
            let addr = (i * 797) % 4096 * 16384;
            d.read(addr, 64);
        }
        let s = d.stats();
        assert!(
            s.row_misses > s.row_hits,
            "hits {} misses {}",
            s.row_hits,
            s.row_misses
        );
    }

    #[test]
    fn busy_cycles_scale_with_bytes_and_misses() {
        let mut seq = DramSim::new(DramConfig::default());
        for i in 0..256u64 {
            seq.read(i * 64, 64);
        }
        let mut rnd = DramSim::new(DramConfig::default());
        for i in 0..256u64 {
            rnd.read((i * 7919) % 1021 * 131072, 64);
        }
        assert_eq!(seq.stats().total_bytes(), rnd.stats().total_bytes());
        assert!(
            rnd.busy_cycles() > seq.busy_cycles(),
            "random {} should exceed sequential {}",
            rnd.busy_cycles(),
            seq.busy_cycles()
        );
    }

    #[test]
    fn energy_follows_bytes() {
        let mut d = DramSim::new(DramConfig::default());
        d.read(0, 64);
        d.write(4096, 64);
        let expected = 128.0 * 8.0 * 7.0;
        assert!((d.energy_pj() - expected).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let mut d = DramSim::new(DramConfig::default());
        d.read(0, 640);
        d.reset();
        assert_eq!(*d.stats(), DramStats::default());
        assert_eq!(d.busy_cycles(), 0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DramStats::default();
        let b = DramStats {
            read_transactions: 2,
            bytes_read: 128,
            useful_bytes: 100,
            row_hits: 1,
            row_misses: 1,
            ..Default::default()
        };
        a.merge(&b);
        a.merge(&b);
        assert_eq!(a.bytes_read, 256);
        assert_eq!(a.row_hits, 2);
    }
}
