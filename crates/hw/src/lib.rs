//! Hardware cost models for the MEGA reproduction: DRAM timing/energy,
//! per-operation energy at 28 nm, and SRAM area/power.
//!
//! The paper's methodology (§VI-A-3): Synopsys DC at TSMC 28 nm for logic,
//! CACTI 7.0 for SRAM buffers, Ramulator + HBM1.0 (256 GB/s) for DRAM, and
//! HyGCN's method for DRAM energy. None of those tools are available here,
//! so this crate provides analytical stand-ins calibrated to the paper's
//! published Table IV numbers:
//!
//! * [`dram`] — a transaction-level HBM model with per-bank row-buffer
//!   tracking: sequential streams run at full bandwidth, irregular gathers
//!   pay row misses and fetch whole 64 B transactions (the exact behaviour
//!   behind Fig. 6 / Fig. 12 / Fig. 16);
//! * [`energy`] — Horowitz-style per-op energies and an accumulating
//!   [`EnergyBreakdown`] over the paper's four categories (DRAM / SRAM /
//!   PU / Leakage, Fig. 18);
//! * [`area`] — CACTI-lite SRAM area/power scaling fitted to Table IV plus
//!   the published component table itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod dram;
pub mod energy;

pub use area::{mega_table_iv, sram_area_mm2, sram_power_mw, ComponentSpec};
pub use dram::{DramConfig, DramSim, DramStats};
pub use energy::{EnergyBreakdown, EnergyTable};
