//! Area/power models at 28 nm: the published Table IV component breakdown
//! plus CACTI-lite scaling laws fitted to it (used when configurations are
//! varied in sensitivity studies).

/// One row of the Table IV breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentSpec {
    /// Component name as printed in Table IV.
    pub name: &'static str,
    /// Area in mm² (28 nm).
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Configuration string.
    pub config: &'static str,
    /// `true` for SRAM buffers, `false` for processing units.
    pub is_buffer: bool,
    /// Buffer capacity in KB (0 for logic).
    pub capacity_kb: u32,
}

/// The published Table IV of the paper — the calibration anchor for the
/// analytic models below.
pub fn mega_table_iv() -> Vec<ComponentSpec> {
    vec![
        ComponentSpec {
            name: "BSEs",
            area_mm2: 0.053,
            power_mw: 14.70,
            config: "4 x 8 x 32",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Aggregation Unit",
            area_mm2: 0.100,
            power_mw: 28.92,
            config: "256",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Crossbar",
            area_mm2: 0.027,
            power_mw: 5.56,
            config: "32 x 8 (64bit)",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Condense Unit",
            area_mm2: 0.002,
            power_mw: 1.19,
            config: "16 ID FIFOs",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Encoder",
            area_mm2: 0.010,
            power_mw: 1.81,
            config: "32 QN units",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Decoder",
            area_mm2: 0.003,
            power_mw: 0.75,
            config: "-",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Others",
            area_mm2: 0.004,
            power_mw: 0.80,
            config: "-",
            is_buffer: false,
            capacity_kb: 0,
        },
        ComponentSpec {
            name: "Aggregation Buffer",
            area_mm2: 0.540,
            power_mw: 46.56,
            config: "128 KB",
            is_buffer: true,
            capacity_kb: 128,
        },
        ComponentSpec {
            name: "Combination Buffer",
            area_mm2: 0.452,
            power_mw: 35.19,
            config: "96 KB",
            is_buffer: true,
            capacity_kb: 96,
        },
        ComponentSpec {
            name: "Input Buffer",
            area_mm2: 0.220,
            power_mw: 22.88,
            config: "64 KB",
            is_buffer: true,
            capacity_kb: 64,
        },
        ComponentSpec {
            name: "Edge Buffer",
            area_mm2: 0.119,
            power_mw: 9.44,
            config: "24 KB",
            is_buffer: true,
            capacity_kb: 24,
        },
        ComponentSpec {
            name: "Sparse Buffer",
            area_mm2: 0.154,
            power_mw: 12.86,
            config: "32 KB",
            is_buffer: true,
            capacity_kb: 32,
        },
        ComponentSpec {
            name: "Weight Buffer",
            area_mm2: 0.190,
            power_mw: 14.32,
            config: "48 KB",
            is_buffer: true,
            capacity_kb: 48,
        },
    ]
}

/// Total processing-unit area from Table IV (mm²).
pub fn table_iv_pu_area() -> f64 {
    mega_table_iv()
        .iter()
        .filter(|c| !c.is_buffer)
        .map(|c| c.area_mm2)
        .sum()
}

/// Total buffer capacity from Table IV (KB).
pub fn table_iv_buffer_kb() -> u32 {
    mega_table_iv().iter().map(|c| c.capacity_kb).sum()
}

/// Total area from Table IV (mm²) — the paper reports 1.869.
pub fn table_iv_total_area() -> f64 {
    mega_table_iv().iter().map(|c| c.area_mm2).sum()
}

/// Total power from Table IV (mW) — the paper reports 194.98.
pub fn table_iv_total_power() -> f64 {
    mega_table_iv().iter().map(|c| c.power_mw).sum()
}

/// CACTI-lite SRAM area (mm² at 28 nm) for a buffer of `kb` KB, fitted to
/// the six Table IV buffer rows (`0.02 + 0.004·KB`).
pub fn sram_area_mm2(kb: f64) -> f64 {
    0.02 + 0.004 * kb
}

/// CACTI-lite SRAM power (mW) for a buffer of `kb` KB
/// (`1.0 + 0.36·KB`).
pub fn sram_power_mw(kb: f64) -> f64 {
    1.0 + 0.36 * kb
}

/// Relative per-access energy of an SRAM of `kb` KB versus the 64 KB
/// reference macro (CACTI's sqrt-capacity wordline/bitline scaling).
pub fn sram_energy_scale(kb: f64) -> f64 {
    (kb.max(1.0) / 64.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_totals_match_the_paper() {
        // Paper: PU total 0.199 mm²/53.73 mW; overall 1.869 mm²/194.98 mW.
        assert!((table_iv_pu_area() - 0.199).abs() < 1e-9);
        // The paper's own rows sum to 1.874; it prints 1.869 (rounding in
        // its buffer subtotal of 1.67).
        assert!((table_iv_total_area() - 1.869).abs() < 0.01);
        assert!((table_iv_total_power() - 194.98).abs() < 0.02);
        assert_eq!(table_iv_buffer_kb(), 392);
    }

    #[test]
    fn cacti_lite_fits_table_iv_buffers() {
        for c in mega_table_iv().iter().filter(|c| c.is_buffer) {
            let a = sram_area_mm2(c.capacity_kb as f64);
            let p = sram_power_mw(c.capacity_kb as f64);
            // Within 35% of the published values across all six buffers.
            assert!(
                (a - c.area_mm2).abs() / c.area_mm2 < 0.35,
                "{}: model {a} vs published {}",
                c.name,
                c.area_mm2
            );
            assert!(
                (p - c.power_mw).abs() / c.power_mw < 0.35,
                "{}: model {p} vs published {}",
                c.name,
                c.power_mw
            );
        }
    }

    #[test]
    fn energy_scale_grows_with_capacity() {
        assert!(sram_energy_scale(32.0) < 1.0);
        assert!((sram_energy_scale(64.0) - 1.0).abs() < 1e-12);
        assert!(sram_energy_scale(256.0) > 1.5);
    }
}
