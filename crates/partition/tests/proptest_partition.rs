//! Property-based tests for the partitioner.

use mega_graph::generate::uniform_random;
use mega_partition::{partition, PartitionConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_node_gets_a_valid_part(
        n in 8usize..120,
        e_factor in 1usize..6,
        k in 2usize..6,
        seed in 0u64..1000,
    ) {
        let g = uniform_random(n, n * e_factor, seed);
        let k = k.min(n);
        let p = partition(&g, &PartitionConfig::new(k).with_seed(seed));
        prop_assert_eq!(p.assignment().len(), n);
        prop_assert!(p.assignment().iter().all(|&a| (a as usize) < k));
    }

    #[test]
    fn intra_plus_inter_equals_total_edges(
        n in 8usize..120,
        e_factor in 1usize..6,
        k in 2usize..6,
        seed in 0u64..1000,
    ) {
        let g = uniform_random(n, n * e_factor, seed);
        let k = k.min(n);
        let p = partition(&g, &PartitionConfig::new(k).with_seed(seed));
        let sc = p.sparse_connections(&g);
        prop_assert_eq!(sc.intra_edges + sc.inter_edges, g.num_edges());
        prop_assert_eq!(sc.inter_edges, p.edge_cut(&g));
    }

    #[test]
    fn external_sources_are_sorted_unique_and_external(
        n in 8usize..100,
        seed in 0u64..500,
    ) {
        let g = uniform_random(n, n * 3, seed);
        let k = 3.min(n);
        let p = partition(&g, &PartitionConfig::new(k).with_seed(seed));
        let sc = p.sparse_connections(&g);
        for (part, sources) in sc.external_sources.iter().enumerate() {
            for w in sources.windows(2) {
                prop_assert!(w[0] < w[1], "not sorted/unique");
            }
            for &s in sources {
                prop_assert_ne!(p.part_of(s as usize) as usize, part,
                    "external source inside its own part");
            }
        }
    }

    #[test]
    fn balance_is_bounded(
        n in 30usize..150,
        seed in 0u64..500,
    ) {
        let g = uniform_random(n, n * 4, seed);
        let p = partition(&g, &PartitionConfig::new(4).with_seed(seed));
        // Allow slack beyond the configured 1.05: initial seeds + integer
        // rounding on small graphs. The invariant is "no part hogs the graph".
        prop_assert!(p.balance() < 2.0, "balance {}", p.balance());
    }
}
