//! Shard specifications: per-part owned node sets plus the *halo* — the
//! L-hop in-neighborhood a shard must replicate to aggregate its owned
//! nodes without touching another shard's memory.
//!
//! This generalizes [`crate::SparseConnections`] from the paper's one-hop
//! `eID` lists (the external sources one aggregation step reads, §III-B)
//! to the L-hop receptive field an L-layer GNN needs: `halo` at `hops = 1`
//! is exactly `SparseConnections::external_sources[part]`, and each extra
//! hop closes the frontier over in-neighbors once more. A serving engine
//! slices per-shard adjacency/feature state out of these specs so a worker
//! with shard affinity never reads global state on the batch path.

use mega_graph::{Graph, NodeId};

use crate::Partitioning;

/// Expands `frontier` for `hops` rounds through `neighbors`, marking
/// reached nodes in `seen` and returning every *newly* reached node,
/// sorted ascending. This is the closure kernel both directions of the
/// halo machinery share: [`Partitioning::shard_spec_with`] walks
/// *in*-neighbors (which rows does a target's receptive field need), and
/// [`influence_closure_with`] walks *out*-neighbors (which targets does a
/// dirtied row influence).
fn close_frontier<'a, F>(
    seen: &mut [bool],
    mut frontier: Vec<NodeId>,
    hops: usize,
    neighbors: F,
) -> Vec<NodeId>
where
    F: Fn(usize) -> &'a [NodeId],
{
    let mut reached: Vec<NodeId> = Vec::new();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &v in &frontier {
            for &u in neighbors(v as usize) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    next.push(u);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        reached.extend_from_slice(&next);
        frontier = next;
    }
    reached.sort_unstable();
    reached
}

/// The *inverse* halo closure: every node within `hops` **out**-edge hops
/// of a seed, including the seeds themselves, sorted ascending.
///
/// Where [`Partitioning::shard_spec_with`] answers "which rows does an
/// `L`-layer receptive field *read*" (the halo an owner must replicate),
/// this answers the reverse question a result cache needs for precise
/// invalidation: "which targets' `L`-hop receptive fields *contain* one of
/// these rows". A target `t` reads row `u` iff `u` reaches `t` within `L`
/// out-edge hops, so the returned set is exactly the cached logits a
/// delta dirtying `seeds` can have affected — everything outside it is
/// provably untouched and may keep serving from cache.
///
/// `num_nodes` bounds the id space; `out_neighbors` reads topology the
/// same way `shard_spec_with` reads `in_neighbors`, so static and dynamic
/// graphs share one implementation.
///
/// # Panics
///
/// Panics if a seed or neighbor id is `>= num_nodes`.
pub fn influence_closure_with<'a, F>(
    seeds: &[NodeId],
    num_nodes: usize,
    hops: usize,
    out_neighbors: F,
) -> Vec<NodeId>
where
    F: Fn(usize) -> &'a [NodeId],
{
    let mut seen = vec![false; num_nodes];
    let mut frontier: Vec<NodeId> = Vec::with_capacity(seeds.len());
    for &v in seeds {
        if !seen[v as usize] {
            seen[v as usize] = true;
            frontier.push(v);
        }
    }
    let mut closure = frontier.clone();
    closure.extend(close_frontier(&mut seen, frontier, hops, out_neighbors));
    closure.sort_unstable();
    closure
}

/// One shard of a partitioned graph: the nodes a shard owns (and answers
/// requests for) plus the halo nodes it replicates read-only.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// The part this shard serves.
    pub part: u32,
    /// Nodes assigned to the part, ascending.
    pub owned: Vec<NodeId>,
    /// Nodes within `hops` in-edge hops of an owned node but owned by
    /// another shard, ascending and disjoint from `owned`. These are the
    /// rows a halo exchange must keep coherent with their owners.
    pub halo: Vec<NodeId>,
}

impl ShardSpec {
    /// Owned and halo nodes merged ascending — the shard's local id space
    /// (local id = position in this list). Keeping locals in ascending
    /// *global* order is what preserves per-row column order, and therefore
    /// floating-point summation order, when adjacency rows are remapped.
    pub fn locals(&self) -> Vec<NodeId> {
        let mut locals = Vec::with_capacity(self.owned.len() + self.halo.len());
        let (mut o, mut h) = (0, 0);
        while o < self.owned.len() && h < self.halo.len() {
            if self.owned[o] < self.halo[h] {
                locals.push(self.owned[o]);
                o += 1;
            } else {
                locals.push(self.halo[h]);
                h += 1;
            }
        }
        locals.extend_from_slice(&self.owned[o..]);
        locals.extend_from_slice(&self.halo[h..]);
        locals
    }

    /// Number of local rows (owned + halo).
    pub fn num_locals(&self) -> usize {
        self.owned.len() + self.halo.len()
    }

    /// Whether the shard owns `v`.
    pub fn owns(&self, v: NodeId) -> bool {
        self.owned.binary_search(&v).is_ok()
    }

    /// Whether `v` is replicated in this shard's halo.
    pub fn in_halo(&self, v: NodeId) -> bool {
        self.halo.binary_search(&v).is_ok()
    }
}

impl Partitioning {
    /// Extracts the [`ShardSpec`] of `part` with an `hops`-hop halo,
    /// reading topology through `in_neighbors` (so static [`Graph`]s and
    /// dynamic graphs share one implementation).
    ///
    /// # Panics
    ///
    /// Panics if `part >= k`.
    pub fn shard_spec_with<'a, F>(&self, part: u32, hops: usize, in_neighbors: F) -> ShardSpec
    where
        F: Fn(usize) -> &'a [NodeId],
    {
        assert!((part as usize) < self.k(), "part id out of range");
        let assignment = self.assignment();
        let owned: Vec<NodeId> = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == part)
            .map(|(v, _)| v as NodeId)
            .collect();
        let mut seen = vec![false; assignment.len()];
        for &v in &owned {
            seen[v as usize] = true;
        }
        let halo = close_frontier(&mut seen, owned.clone(), hops, in_neighbors);
        ShardSpec { part, owned, halo }
    }

    /// [`Partitioning::shard_spec_with`] over a static [`Graph`].
    pub fn shard_spec(&self, graph: &Graph, part: u32, hops: usize) -> ShardSpec {
        self.shard_spec_with(part, hops, |v| graph.in_neighbors(v))
    }

    /// Shard specs for every part.
    pub fn shard_specs(&self, graph: &Graph, hops: usize) -> Vec<ShardSpec> {
        (0..self.k() as u32)
            .map(|p| self.shard_spec(graph, p, hops))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2 in part 0; 3-4-5 in part 1; cross edges 2->3, 5->0.
    fn setup() -> (Graph, Partitioning) {
        let g = Graph::from_directed_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (5, 0)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        (g, p)
    }

    #[test]
    fn one_hop_halo_matches_sparse_connections() {
        let (g, p) = setup();
        let sc = p.sparse_connections(&g);
        for part in 0..2u32 {
            let spec = p.shard_spec(&g, part, 1);
            assert_eq!(
                spec.halo, sc.external_sources[part as usize],
                "part {part}: one-hop halo must equal the eID list"
            );
        }
    }

    #[test]
    fn halo_grows_with_hops_and_stays_disjoint() {
        let (g, p) = setup();
        let h1 = p.shard_spec(&g, 0, 1);
        let h2 = p.shard_spec(&g, 0, 2);
        assert_eq!(h1.owned, vec![0, 1, 2]);
        // 1 hop: node 0 needs 5. 2 hops: 5 needs 4 as well.
        assert_eq!(h1.halo, vec![5]);
        assert_eq!(h2.halo, vec![4, 5]);
        for spec in [&h1, &h2] {
            assert!(spec.halo.iter().all(|&v| !spec.owns(v)));
            assert!(spec.halo.iter().all(|&v| spec.in_halo(v)));
        }
    }

    #[test]
    fn locals_merge_ascending() {
        let (g, p) = setup();
        let spec = p.shard_spec(&g, 1, 2);
        let locals = spec.locals();
        assert!(locals.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(locals.len(), spec.num_locals());
        for &v in &spec.owned {
            assert!(locals.binary_search(&v).is_ok());
        }
        for &v in &spec.halo {
            assert!(locals.binary_search(&v).is_ok());
        }
    }

    #[test]
    fn hop_expansion_saturates() {
        let (g, p) = setup();
        // The graph has 6 nodes; an absurd hop count terminates early once
        // the frontier empties.
        let spec = p.shard_spec(&g, 0, 64);
        assert!(spec.num_locals() <= 6);
    }

    #[test]
    fn zero_hops_means_no_halo() {
        let (g, p) = setup();
        let spec = p.shard_spec(&g, 0, 0);
        assert!(spec.halo.is_empty());
        assert_eq!(spec.locals(), spec.owned);
    }

    #[test]
    fn influence_closure_walks_out_edges() {
        let (g, _) = setup();
        let out = |v: usize| g.out_neighbors(v);
        // Seeds alone at zero hops (deduplicated and sorted).
        assert_eq!(influence_closure_with(&[2, 2, 0], 6, 0, out), vec![0, 2]);
        // Edges 0->1, 1->2, 2->3: node 0 influences 1 in one hop, 2 in two.
        assert_eq!(influence_closure_with(&[0], 6, 1, out), vec![0, 1]);
        assert_eq!(influence_closure_with(&[0], 6, 2, out), vec![0, 1, 2]);
        // Saturates once the frontier empties instead of looping.
        let all = influence_closure_with(&[0], 6, 64, out);
        assert!(all.len() <= 6 && all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn influence_closure_inverts_the_halo_closure() {
        // u is in the L-hop in-closure of t exactly when t is in the L-hop
        // influence (out-)closure of u — on every pair of this graph.
        let (g, _) = setup();
        for hops in 0..3usize {
            for u in 0..6u32 {
                let influenced = influence_closure_with(&[u], 6, hops, |v| g.out_neighbors(v));
                for t in 0..6u32 {
                    let p =
                        Partitioning::new((0..6).map(|v| u32::from(v != t)).collect::<Vec<_>>(), 2);
                    let spec = p.shard_spec(&g, 0, hops);
                    let field_has_u = spec.owns(u) || spec.in_halo(u);
                    assert_eq!(
                        field_has_u,
                        influenced.binary_search(&t).is_ok(),
                        "hops {hops}: field({t}) ∋ {u} must equal influence({u}) ∋ {t}"
                    );
                }
            }
        }
    }
}
