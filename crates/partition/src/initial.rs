//! Greedy region-growing initial partitioning of the coarsest graph.

use rand::Rng;

use crate::WGraph;

/// Assigns the nodes of (the coarsest) `graph` to `k` parts by growing
/// regions from random seeds: parts take turns absorbing the frontier node
/// most connected to them, keeping node-weight balance.
#[allow(clippy::needless_range_loop)] // index loops mirror the paper's pseudocode
pub fn greedy_growing<R: Rng + ?Sized>(graph: &WGraph, k: usize, rng: &mut R) -> Vec<u32> {
    let n = graph.num_nodes();
    const FREE: u32 = u32::MAX;
    let mut assignment = vec![FREE; n];
    if n == 0 {
        return assignment;
    }
    let capacity = (graph.total_weight() as f64 / k as f64).ceil() as u64;
    let mut part_weight = vec![0u64; k];

    // Seed each part with a distinct random node.
    let mut seeds = Vec::with_capacity(k);
    let mut guard = 0;
    while seeds.len() < k && guard < 50 * k {
        guard += 1;
        let v = rng.gen_range(0..n);
        if assignment[v] == FREE {
            assignment[v] = seeds.len() as u32;
            part_weight[seeds.len()] += graph.node_weight(v) as u64;
            seeds.push(v);
        }
    }
    // If duplicates exhausted the guard (tiny graphs), fill remaining seeds
    // with the first free nodes.
    for p in seeds.len()..k {
        if let Some(v) = (0..n).find(|&v| assignment[v] == FREE) {
            assignment[v] = p as u32;
            part_weight[p] += graph.node_weight(v) as u64;
        }
    }

    // `conn[v][p]` would be O(nk) memory; instead grow parts round-robin,
    // scanning each part's boundary for the best next node.
    let mut remaining: usize = assignment.iter().filter(|&&a| a == FREE).count();
    while remaining > 0 {
        let mut progressed = false;
        for p in 0..k {
            if part_weight[p] >= capacity {
                continue;
            }
            // Find the free node most strongly connected to part p.
            let mut best: Option<(usize, u64)> = None;
            for v in 0..n {
                if assignment[v] != FREE {
                    continue;
                }
                let conn: u64 = graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&(u, _)| assignment[u as usize] == p as u32)
                    .map(|&(_, w)| w as u64)
                    .sum();
                if conn > 0 && best.is_none_or(|(_, bc)| conn > bc) {
                    best = Some((v, conn));
                }
            }
            if let Some((v, _)) = best {
                assignment[v] = p as u32;
                part_weight[p] += graph.node_weight(v) as u64;
                remaining -= 1;
                progressed = true;
                if remaining == 0 {
                    break;
                }
            }
        }
        if !progressed {
            // Disconnected leftovers: dump each into the lightest part.
            for v in 0..n {
                if assignment[v] == FREE {
                    let p = (0..k).min_by_key(|&p| part_weight[p]).expect("k > 0");
                    assignment[v] = p as u32;
                    part_weight[p] += graph.node_weight(v) as u64;
                    remaining -= 1;
                }
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid(side: usize) -> WGraph {
        let mut edges = Vec::new();
        let id = |r: usize, c: usize| (r * side + c) as u32;
        for r in 0..side {
            for c in 0..side {
                if c + 1 < side {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < side {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        WGraph::from_graph(&Graph::from_undirected_edges(side * side, edges))
    }

    #[test]
    fn all_nodes_assigned() {
        let g = grid(8);
        let mut rng = StdRng::seed_from_u64(1);
        let a = greedy_growing(&g, 4, &mut rng);
        assert!(a.iter().all(|&p| p < 4));
    }

    #[test]
    fn parts_are_roughly_balanced() {
        let g = grid(10);
        let mut rng = StdRng::seed_from_u64(2);
        let a = greedy_growing(&g, 4, &mut rng);
        let mut sizes = [0usize; 4];
        for &p in &a {
            sizes[p as usize] += 1;
        }
        let max = *sizes.iter().max().unwrap();
        assert!(max <= 35, "sizes {sizes:?}"); // ideal 25, generous cap
    }

    #[test]
    fn disconnected_components_still_assigned() {
        // Two disjoint edges and an isolated node.
        let g = WGraph::from_graph(&Graph::from_undirected_edges(5, vec![(0, 1), (2, 3)]));
        let mut rng = StdRng::seed_from_u64(3);
        let a = greedy_growing(&g, 2, &mut rng);
        assert!(a.iter().all(|&p| p < 2));
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let g = grid(2);
        let mut rng = StdRng::seed_from_u64(4);
        let a = greedy_growing(&g, 4, &mut rng);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
