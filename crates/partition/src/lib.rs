//! Multilevel k-way graph partitioning (METIS-like) for the MEGA
//! reproduction.
//!
//! The paper's Condense-Edge scheduling strategy (§V-E), as well as the GROW
//! and GCoD baselines, partition the graph with METIS \[28\] before
//! aggregation: dense subgraphs are processed one at a time while *sparse
//! connections* (edges crossing subgraphs) cause the irregular DRAM traffic
//! the paper attacks. METIS itself is unavailable here, so this crate
//! implements the same classic multilevel scheme METIS uses:
//!
//! 1. **Coarsening** — repeated heavy-edge matching merges strongly
//!    connected node pairs until the graph is small ([`coarsen`]);
//! 2. **Initial partitioning** — greedy region growing assigns the coarsest
//!    nodes to `k` balanced parts ([`initial`]);
//! 3. **Uncoarsening + refinement** — the assignment is projected back and
//!    improved by boundary Kernighan–Lin moves ([`refine`]).
//!
//! # Example
//!
//! ```
//! use mega_graph::generate::PowerLawSbm;
//! use mega_partition::{partition, PartitionConfig};
//!
//! let g = PowerLawSbm {
//!     nodes: 300, directed_edges: 1200, exponent: 2.1,
//!     communities: 4, homophily: 0.85, symmetric: true, seed: 3,
//! }.generate().graph;
//! let parts = partition(&g, &PartitionConfig::new(4));
//! assert_eq!(parts.k(), 4);
//! // A sensible partition cuts well under half of this homophilous graph.
//! assert!(parts.cut_fraction(&g) < 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coarsen;
pub mod halo;
pub mod initial;
pub mod partitioning;
pub mod refine;
pub mod wgraph;

pub use halo::{influence_closure_with, ShardSpec};
pub use partitioning::{Partitioning, SparseConnections};
pub use wgraph::WGraph;

use mega_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration for [`partition`].
#[derive(Debug, Clone)]
pub struct PartitionConfig {
    /// Number of parts `k`.
    pub k: usize,
    /// Allowed imbalance: a part may weigh up to
    /// `max_imbalance × total/k` (METIS default is 1.03; we default 1.05).
    pub max_imbalance: f64,
    /// Stop coarsening once the graph has at most `coarsen_to × k` nodes.
    pub coarsen_to_per_part: usize,
    /// Refinement passes per uncoarsening level.
    pub refine_passes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl PartitionConfig {
    /// Defaults for `k` parts.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            max_imbalance: 1.05,
            coarsen_to_per_part: 30,
            refine_passes: 4,
            seed: 0x9A97,
        }
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Partitions `graph` into `config.k` balanced parts minimizing edge cut.
///
/// # Panics
///
/// Panics if `k == 0` or `k` exceeds the node count.
pub fn partition(graph: &Graph, config: &PartitionConfig) -> Partitioning {
    assert!(config.k > 0, "k must be positive");
    assert!(config.k <= graph.num_nodes().max(1), "k exceeds node count");
    if config.k == 1 {
        return Partitioning::new(vec![0; graph.num_nodes()], 1);
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut levels: Vec<(WGraph, Vec<u32>)> = Vec::new();
    let mut current = WGraph::from_graph(graph);
    let stop = (config.coarsen_to_per_part * config.k).max(2 * config.k);
    while current.num_nodes() > stop {
        let (coarse, cmap) = coarsen::coarsen_once(&current, &mut rng);
        let stalled = coarse.num_nodes() as f64 > current.num_nodes() as f64 * 0.95;
        levels.push((std::mem::replace(&mut current, coarse), cmap));
        if stalled {
            // Matching degenerates on star-like graphs; stop early rather
            // than looping without progress.
            break;
        }
    }
    let mut assignment = initial::greedy_growing(&current, config.k, &mut rng);
    refine::refine(
        &current,
        &mut assignment,
        config.k,
        config.max_imbalance,
        config.refine_passes,
        &mut rng,
    );
    // Project back through the levels, refining at each.
    while let Some((fine, cmap)) = levels.pop() {
        let mut fine_assignment = vec![0u32; fine.num_nodes()];
        for (v, &cv) in cmap.iter().enumerate() {
            fine_assignment[v] = assignment[cv as usize];
        }
        refine::refine(
            &fine,
            &mut fine_assignment,
            config.k,
            config.max_imbalance,
            config.refine_passes,
            &mut rng,
        );
        assignment = fine_assignment;
    }
    Partitioning::new(assignment, config.k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::generate::PowerLawSbm;

    fn test_graph(seed: u64) -> (Graph, Vec<u16>) {
        let out = PowerLawSbm {
            nodes: 600,
            directed_edges: 3000,
            exponent: 2.1,
            communities: 4,
            homophily: 0.9,
            symmetric: true,
            seed,
        }
        .generate();
        (out.graph, out.communities)
    }

    #[test]
    fn produces_k_nonempty_balanced_parts() {
        let (g, _) = test_graph(1);
        let p = partition(&g, &PartitionConfig::new(4));
        let sizes = p.part_sizes();
        assert_eq!(sizes.len(), 4);
        assert!(sizes.iter().all(|&s| s > 0), "empty part: {sizes:?}");
        let max = *sizes.iter().max().unwrap() as f64;
        let ideal = g.num_nodes() as f64 / 4.0;
        assert!(max <= ideal * 1.35, "imbalanced: {sizes:?}");
    }

    #[test]
    fn cut_is_much_better_than_random() {
        let (g, _) = test_graph(2);
        let p = partition(&g, &PartitionConfig::new(4));
        let cut = p.edge_cut(&g);
        // Random 4-way assignment cuts ~75% of edges; on a 0.9-homophily
        // 4-community graph a multilevel partitioner should do far better.
        let random_cut = (g.num_edges() as f64 * 0.75) as usize;
        assert!(
            cut * 2 < random_cut,
            "cut {cut} not < half of random {random_cut}"
        );
    }

    #[test]
    fn k_equal_one_puts_everything_in_part_zero() {
        let (g, _) = test_graph(3);
        let p = partition(&g, &PartitionConfig::new(1));
        assert_eq!(p.edge_cut(&g), 0);
        assert!(p.assignment().iter().all(|&a| a == 0));
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, _) = test_graph(4);
        let a = partition(&g, &PartitionConfig::new(4));
        let b = partition(&g, &PartitionConfig::new(4));
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn roughly_recovers_planted_communities() {
        let (g, communities) = test_graph(5);
        let p = partition(&g, &PartitionConfig::new(4));
        // Count pairs of same-community nodes placed in the same part via a
        // contingency check on a sample.
        let mut agree = 0usize;
        let mut total = 0usize;
        for i in (0..g.num_nodes()).step_by(7) {
            for j in ((i + 1)..g.num_nodes()).step_by(11) {
                let same_comm = communities[i] == communities[j];
                let same_part = p.assignment()[i] == p.assignment()[j];
                if same_comm == same_part {
                    agree += 1;
                }
                total += 1;
            }
        }
        let rate = agree as f64 / total as f64;
        assert!(rate > 0.6, "community agreement only {rate}");
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let (g, _) = test_graph(6);
        let _ = partition(&g, &PartitionConfig::new(0));
    }
}
