//! The result of a partitioning run, with the metrics and edge
//! classifications the accelerator models consume.

use mega_graph::{Graph, NodeId};

/// A k-way node assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    assignment: Vec<u32>,
    k: usize,
    /// Node count per part, maintained incrementally so append-heavy
    /// dynamic growth ([`Partitioning::push_balanced`]) stays `O(k)` per
    /// add instead of rescanning the assignment.
    sizes: Vec<usize>,
}

/// Classification of a graph's edges under a partitioning, in the paper's
/// terms: *dense subgraph* edges stay within a part, *sparse connections*
/// cross parts (paper §III-B, Fig. 12).
#[derive(Debug, Clone)]
pub struct SparseConnections {
    /// Per destination part: sorted, deduplicated external source node IDs
    /// (the `eID`s consumed by the Condense Unit, Algorithm 1).
    pub external_sources: Vec<Vec<NodeId>>,
    /// Number of intra-part (dense subgraph) edges.
    pub intra_edges: usize,
    /// Number of inter-part (sparse connection) edges.
    pub inter_edges: usize,
}

impl Partitioning {
    /// Wraps an assignment.
    ///
    /// # Panics
    ///
    /// Panics if any part id is `>= k`.
    pub fn new(assignment: Vec<u32>, k: usize) -> Self {
        assert!(
            assignment.iter().all(|&p| (p as usize) < k),
            "part id out of range"
        );
        let mut sizes = vec![0usize; k];
        for &p in &assignment {
            sizes[p as usize] += 1;
        }
        Self {
            assignment,
            k,
            sizes,
        }
    }

    /// Number of parts.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Node→part assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Part of node `v`.
    pub fn part_of(&self, v: usize) -> u32 {
        self.assignment[v]
    }

    /// Appends the assignment for a freshly added node (dynamic-graph
    /// growth keeps the partitioning aligned without a re-partition; the
    /// assignment is a locality hint, so a heuristic part is fine).
    ///
    /// # Panics
    ///
    /// Panics if `part >= k`.
    pub fn push(&mut self, part: u32) {
        assert!((part as usize) < self.k, "part id out of range");
        self.assignment.push(part);
        self.sizes[part as usize] += 1;
    }

    /// Appends a freshly added node to the least-loaded part among
    /// `neighbor_parts` (the parts of its already-assigned neighbors), so
    /// growth preserves locality without piling onto one shard. With no
    /// eligible neighbor part, falls back to the globally least-loaded
    /// part. Ties break toward the lowest part id, keeping the assignment
    /// deterministic. Returns the chosen part.
    ///
    /// Out-of-range entries in `neighbor_parts` are ignored rather than
    /// panicking: callers may feed parts recorded before a re-partition.
    pub fn push_balanced(&mut self, neighbor_parts: &[u32]) -> u32 {
        let part = neighbor_parts
            .iter()
            .copied()
            .filter(|&p| (p as usize) < self.k)
            .min_by_key(|&p| (self.sizes[p as usize], p))
            .unwrap_or_else(|| {
                (0..self.k as u32)
                    .min_by_key(|&p| (self.sizes[p as usize], p))
                    .expect("k is positive")
            });
        self.push(part);
        part
    }

    /// Node count per part (`O(k)` — maintained incrementally).
    pub fn part_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    /// Nodes of each part, in ascending node order.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut members = vec![Vec::new(); self.k];
        for (v, &p) in self.assignment.iter().enumerate() {
            members[p as usize].push(v as NodeId);
        }
        members
    }

    /// Reorders `nodes` so members of the same part are adjacent (stable
    /// within a part). Batch executors use this to walk a batch's targets
    /// in partition-locality order.
    pub fn order_by_part(&self, nodes: &[NodeId]) -> Vec<NodeId> {
        let mut ordered = nodes.to_vec();
        ordered.sort_by_key(|&v| (self.part_of(v as usize), v));
        ordered
    }

    /// Number of directed edges whose endpoints lie in different parts.
    pub fn edge_cut(&self, graph: &Graph) -> usize {
        let mut cut = 0usize;
        for v in 0..graph.num_nodes() {
            for &u in graph.out_neighbors(v) {
                if self.assignment[v] != self.assignment[u as usize] {
                    cut += 1;
                }
            }
        }
        cut
    }

    /// Fraction of edges cut.
    pub fn cut_fraction(&self, graph: &Graph) -> f64 {
        if graph.num_edges() == 0 {
            0.0
        } else {
            self.edge_cut(graph) as f64 / graph.num_edges() as f64
        }
    }

    /// Maximum part size divided by the ideal size `n/k`.
    pub fn balance(&self) -> f64 {
        let sizes = self.part_sizes();
        let max = *sizes.iter().max().unwrap_or(&0) as f64;
        let ideal = self.assignment.len() as f64 / self.k as f64;
        if ideal == 0.0 {
            1.0
        } else {
            max / ideal
        }
    }

    /// Classifies edges into dense-subgraph vs sparse-connection sets and
    /// computes, per part, the external source nodes whose features must be
    /// fetched when aggregating that part (the paper's `eID` lists).
    pub fn sparse_connections(&self, graph: &Graph) -> SparseConnections {
        let mut external: Vec<Vec<NodeId>> = vec![Vec::new(); self.k];
        let mut intra = 0usize;
        let mut inter = 0usize;
        for dst in 0..graph.num_nodes() {
            let dp = self.assignment[dst] as usize;
            for &src in graph.in_neighbors(dst) {
                if self.assignment[src as usize] as usize == dp {
                    intra += 1;
                } else {
                    inter += 1;
                    external[dp].push(src);
                }
            }
        }
        for list in &mut external {
            list.sort_unstable();
            list.dedup();
        }
        SparseConnections {
            external_sources: external,
            intra_edges: intra,
            inter_edges: inter,
        }
    }
}

impl SparseConnections {
    /// Total distinct external fetches summed over parts (a node needed by
    /// `p` parts counts `p` times, matching the paper's reuse analysis:
    /// within one subgraph a node is fetched once, across subgraphs again).
    pub fn total_external_fetches(&self) -> usize {
        self.external_sources.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2 in part 0; 3-4-5 in part 1; cross edges 2->3, 5->0.
    fn setup() -> (Graph, Partitioning) {
        let g = Graph::from_directed_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5), (2, 3), (5, 0)]);
        let p = Partitioning::new(vec![0, 0, 0, 1, 1, 1], 2);
        (g, p)
    }

    #[test]
    fn cut_counts_cross_part_edges() {
        let (g, p) = setup();
        assert_eq!(p.edge_cut(&g), 2);
        assert!((p.cut_fraction(&g) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn sparse_connections_lists_external_sources() {
        let (g, p) = setup();
        let sc = p.sparse_connections(&g);
        assert_eq!(sc.intra_edges, 4);
        assert_eq!(sc.inter_edges, 2);
        // Part 0 aggregates node 0 which needs node 5 (external).
        assert_eq!(sc.external_sources[0], vec![5]);
        // Part 1 aggregates node 3 which needs node 2 (external).
        assert_eq!(sc.external_sources[1], vec![2]);
        assert_eq!(sc.total_external_fetches(), 2);
    }

    #[test]
    fn external_sources_dedup_across_multiple_uses() {
        // Node 0 feeds both 2 and 3 in part 1: fetched once.
        let g = Graph::from_directed_edges(4, vec![(0, 2), (0, 3), (1, 2)]);
        let p = Partitioning::new(vec![0, 1, 1, 1], 2);
        let sc = p.sparse_connections(&g);
        assert_eq!(sc.external_sources[1], vec![0]);
        assert_eq!(sc.inter_edges, 2);
    }

    #[test]
    fn members_and_sizes_agree() {
        let (_, p) = setup();
        let m = p.members();
        assert_eq!(m[0], vec![0, 1, 2]);
        assert_eq!(m[1], vec![3, 4, 5]);
        assert_eq!(p.part_sizes(), vec![3, 3]);
    }

    #[test]
    fn balance_of_even_split_is_one() {
        let (_, p) = setup();
        assert!((p.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_part_id_panics() {
        let _ = Partitioning::new(vec![0, 2], 2);
    }

    #[test]
    fn push_balanced_prefers_lightest_neighbor_part() {
        // Part 0 holds 3 nodes, part 1 holds 1.
        let mut p = Partitioning::new(vec![0, 0, 0, 1], 2);
        // Neighbors live in both parts: the lighter one (1) wins.
        assert_eq!(p.push_balanced(&[0, 1, 0]), 1);
        assert_eq!(p.part_of(4), 1);
        // Neighbor parts now tie 3 vs 2 — still part 1.
        assert_eq!(p.push_balanced(&[1, 0]), 1);
        // With only heavy-part neighbors, locality still wins over balance.
        assert_eq!(p.push_balanced(&[0]), 0);
    }

    #[test]
    fn push_balanced_falls_back_to_global_minimum() {
        let mut p = Partitioning::new(vec![0, 0, 1, 2], 3);
        // No neighbors at all: globally least-loaded (tie 1 vs 2 -> 1).
        assert_eq!(p.push_balanced(&[]), 1);
        // Stale out-of-range neighbor parts are ignored.
        assert_eq!(p.push_balanced(&[9]), 2);
        assert_eq!(p.part_sizes(), vec![2, 2, 2]);
    }
}
