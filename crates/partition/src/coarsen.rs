//! Heavy-edge-matching coarsening.

use rand::Rng;
use std::collections::HashMap;

use crate::WGraph;
use mega_graph::generate::shuffle;

/// One coarsening step: computes a heavy-edge matching and contracts matched
/// pairs. Returns the coarse graph and the fine→coarse node map.
pub fn coarsen_once<R: Rng + ?Sized>(graph: &WGraph, rng: &mut R) -> (WGraph, Vec<u32>) {
    let n = graph.num_nodes();
    const UNMATCHED: u32 = u32::MAX;
    let mut mate = vec![UNMATCHED; n];
    let mut order: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut order, rng);
    for &v in &order {
        let v = v as usize;
        if mate[v] != UNMATCHED {
            continue;
        }
        // Pick the unmatched neighbor with maximum edge weight (heavy-edge
        // matching); ties broken by first occurrence.
        let mut best: Option<(u32, u32)> = None;
        for &(u, w) in graph.neighbors(v) {
            if mate[u as usize] == UNMATCHED && best.is_none_or(|(_, bw)| w > bw) {
                best = Some((u, w));
            }
        }
        match best {
            Some((u, _)) => {
                mate[v] = u;
                mate[u as usize] = v as u32;
            }
            None => mate[v] = v as u32, // singleton
        }
    }
    // Assign coarse ids: one per matched pair / singleton.
    let mut cmap = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n {
        if cmap[v] != u32::MAX {
            continue;
        }
        let m = mate[v] as usize;
        cmap[v] = next;
        cmap[m] = next;
        next += 1;
    }
    let coarse_n = next as usize;
    let mut node_weights = vec![0u32; coarse_n];
    for v in 0..n {
        node_weights[cmap[v] as usize] += graph.node_weight(v);
    }
    // Accumulate coarse edges.
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); coarse_n];
    for v in 0..n {
        let cv = cmap[v];
        let mut acc: HashMap<u32, u32> = HashMap::new();
        for &(u, w) in graph.neighbors(v) {
            let cu = cmap[u as usize];
            if cu != cv {
                *acc.entry(cu).or_insert(0) += w;
            }
        }
        for (cu, w) in acc {
            adj[cv as usize].push((cu, w));
        }
    }
    (WGraph::from_parts(node_weights, adj), cmap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize) -> WGraph {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        WGraph::from_graph(&Graph::from_undirected_edges(n, edges))
    }

    #[test]
    fn coarsening_roughly_halves_node_count() {
        let g = ring(64);
        let mut rng = StdRng::seed_from_u64(7);
        let (coarse, cmap) = coarsen_once(&g, &mut rng);
        assert!(coarse.num_nodes() <= 40, "got {}", coarse.num_nodes());
        assert_eq!(cmap.len(), 64);
    }

    #[test]
    fn node_weight_is_conserved() {
        let g = ring(50);
        let mut rng = StdRng::seed_from_u64(8);
        let (coarse, _) = coarsen_once(&g, &mut rng);
        assert_eq!(coarse.total_weight(), g.total_weight());
    }

    #[test]
    fn cmap_is_consistent_with_coarse_size() {
        let g = ring(30);
        let mut rng = StdRng::seed_from_u64(9);
        let (coarse, cmap) = coarsen_once(&g, &mut rng);
        let max = *cmap.iter().max().unwrap() as usize;
        assert_eq!(max + 1, coarse.num_nodes());
    }

    #[test]
    fn matched_pairs_share_an_edge() {
        // On a ring, each coarse node of weight 2 must come from adjacent
        // fine nodes.
        let g = ring(20);
        let mut rng = StdRng::seed_from_u64(10);
        let (_, cmap) = coarsen_once(&g, &mut rng);
        let mut groups: std::collections::HashMap<u32, Vec<usize>> =
            std::collections::HashMap::new();
        for (v, &c) in cmap.iter().enumerate() {
            groups.entry(c).or_default().push(v);
        }
        for (_, members) in groups {
            if members.len() == 2 {
                let d = (members[0] as i64 - members[1] as i64).unsigned_abs();
                assert!(d == 1 || d == 19, "non-adjacent pair {members:?}");
            } else {
                assert_eq!(members.len(), 1);
            }
        }
    }

    #[test]
    fn isolated_nodes_become_singletons() {
        let g = WGraph::from_graph(&Graph::from_directed_edges(3, vec![]));
        let mut rng = StdRng::seed_from_u64(11);
        let (coarse, _) = coarsen_once(&g, &mut rng);
        assert_eq!(coarse.num_nodes(), 3);
    }
}
