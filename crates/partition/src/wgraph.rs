//! Weighted working graph used internally by the multilevel partitioner.

use mega_graph::Graph;

/// An undirected graph with node and edge weights, in adjacency-list form.
///
/// Built from a [`Graph`] by merging each directed edge pair into one
/// undirected weighted edge; coarsening produces successively smaller
/// `WGraph`s whose node weights record how many original nodes each coarse
/// node represents.
#[derive(Debug, Clone)]
pub struct WGraph {
    node_weights: Vec<u32>,
    /// `adj[v]` lists `(neighbor, edge_weight)`, neighbor-sorted.
    adj: Vec<Vec<(u32, u32)>>,
}

impl WGraph {
    /// Builds the level-0 working graph: every node weight 1, every
    /// undirected edge weight = number of directed edges between the pair
    /// (1 or 2).
    #[allow(clippy::needless_range_loop)] // adjacency built per source node
    pub fn from_graph(graph: &Graph) -> Self {
        let n = graph.num_nodes();
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for v in 0..n {
            for &u in graph.out_neighbors(v) {
                adj[v].push((u, 1));
            }
            for &u in graph.in_neighbors(v) {
                // Only count in-edges whose reverse is absent, so symmetric
                // pairs get weight 2 exactly once per side.
                adj[v].push((u, 1));
            }
        }
        let mut g = Self {
            node_weights: vec![1; n],
            adj,
        };
        g.normalize();
        g
    }

    /// Builds directly from parts (used by coarsening).
    pub fn from_parts(node_weights: Vec<u32>, adj: Vec<Vec<(u32, u32)>>) -> Self {
        let mut g = Self { node_weights, adj };
        g.normalize();
        g
    }

    fn normalize(&mut self) {
        for (v, list) in self.adj.iter_mut().enumerate() {
            list.retain(|&(u, _)| u as usize != v);
            list.sort_unstable_by_key(|&(u, _)| u);
            let mut merged: Vec<(u32, u32)> = Vec::with_capacity(list.len());
            for &(u, w) in list.iter() {
                if let Some(last) = merged.last_mut() {
                    if last.0 == u {
                        last.1 += w;
                        continue;
                    }
                }
                merged.push((u, w));
            }
            *list = merged;
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.node_weights.len()
    }

    /// Weight of node `v` (number of original nodes it represents).
    pub fn node_weight(&self, v: usize) -> u32 {
        self.node_weights[v]
    }

    /// Total node weight.
    pub fn total_weight(&self) -> u64 {
        self.node_weights.iter().map(|&w| w as u64).sum()
    }

    /// Weighted neighbor list of `v`.
    pub fn neighbors(&self, v: usize) -> &[(u32, u32)] {
        &self.adj[v]
    }

    /// Sum of edge weights (each undirected edge counted twice).
    pub fn total_edge_weight(&self) -> u64 {
        self.adj
            .iter()
            .flat_map(|l| l.iter().map(|&(_, w)| w as u64))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_graph_merges_directions() {
        // 0 <-> 1 symmetric, 1 -> 2 one-way.
        let g = Graph::from_directed_edges(3, vec![(0, 1), (1, 0), (1, 2)]);
        let w = WGraph::from_graph(&g);
        // Node 0: sees edge to 1 from out (w1) and in (w1) -> merged weight 2.
        assert_eq!(w.neighbors(0), &[(1, 2)]);
        // Node 1: symmetric edge to 0 (2) and out-edge to 2 (1).
        assert_eq!(w.neighbors(1), &[(0, 2), (2, 1)]);
        // Node 2: only the incoming edge from 1.
        assert_eq!(w.neighbors(2), &[(1, 1)]);
    }

    #[test]
    fn self_loops_are_dropped() {
        let w = WGraph::from_parts(vec![1, 1], vec![vec![(0, 5), (1, 1)], vec![(0, 1)]]);
        assert_eq!(w.neighbors(0), &[(1, 1)]);
    }

    #[test]
    fn duplicate_neighbors_merge_weights() {
        let w = WGraph::from_parts(vec![1, 1], vec![vec![(1, 2), (1, 3)], vec![(0, 5)]]);
        assert_eq!(w.neighbors(0), &[(1, 5)]);
        assert_eq!(w.total_edge_weight(), 10);
    }

    #[test]
    fn totals() {
        let w = WGraph::from_parts(vec![2, 3], vec![vec![(1, 1)], vec![(0, 1)]]);
        assert_eq!(w.total_weight(), 5);
        assert_eq!(w.num_nodes(), 2);
    }
}
