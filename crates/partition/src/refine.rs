//! Boundary Kernighan–Lin refinement.

use rand::Rng;

use crate::WGraph;
use mega_graph::generate::shuffle;

/// Improves `assignment` in place: repeatedly moves boundary nodes to the
/// neighboring part with the highest positive gain, subject to the balance
/// constraint `part_weight ≤ max_imbalance × total/k`.
pub fn refine<R: Rng + ?Sized>(
    graph: &WGraph,
    assignment: &mut [u32],
    k: usize,
    max_imbalance: f64,
    passes: usize,
    rng: &mut R,
) {
    let n = graph.num_nodes();
    if n == 0 || k < 2 {
        return;
    }
    let capacity = (graph.total_weight() as f64 / k as f64 * max_imbalance).ceil() as u64;
    let mut part_weight = vec![0u64; k];
    for v in 0..n {
        part_weight[assignment[v] as usize] += graph.node_weight(v) as u64;
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut conn = vec![0u64; k];
    for _ in 0..passes {
        shuffle(&mut order, rng);
        let mut moved = 0usize;
        for &v in &order {
            let v = v as usize;
            let home = assignment[v] as usize;
            // Connectivity of v to each part present in its neighborhood.
            let mut touched: Vec<usize> = Vec::new();
            for &(u, w) in graph.neighbors(v) {
                let p = assignment[u as usize] as usize;
                if conn[p] == 0 {
                    touched.push(p);
                }
                conn[p] += w as u64;
            }
            let internal = conn[home];
            let mut best: Option<(usize, u64)> = None;
            for &p in &touched {
                if p == home {
                    continue;
                }
                let w = graph.node_weight(v) as u64;
                if part_weight[p] + w > capacity {
                    continue;
                }
                if conn[p] > internal && best.is_none_or(|(_, bc)| conn[p] > bc) {
                    best = Some((p, conn[p]));
                }
            }
            if let Some((p, _)) = best {
                let w = graph.node_weight(v) as u64;
                part_weight[home] -= w;
                part_weight[p] += w;
                assignment[v] = p as u32;
                moved += 1;
            }
            for &p in &touched {
                conn[p] = 0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

/// Edge-cut weight of `assignment` on the working graph (each undirected
/// edge counted once).
pub fn cut_weight(graph: &WGraph, assignment: &[u32]) -> u64 {
    let mut cut = 0u64;
    for v in 0..graph.num_nodes() {
        for &(u, w) in graph.neighbors(v) {
            if assignment[v] != assignment[u as usize] {
                cut += w as u64;
            }
        }
    }
    cut / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use mega_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two 8-cliques joined by one edge; the optimal 2-cut is 1.
    fn two_cliques() -> WGraph {
        let mut edges = Vec::new();
        for offset in [0u32, 8] {
            for i in 0..8u32 {
                for j in (i + 1)..8 {
                    edges.push((offset + i, offset + j));
                }
            }
        }
        edges.push((0, 8));
        WGraph::from_graph(&Graph::from_undirected_edges(16, edges))
    }

    #[test]
    fn refinement_reduces_cut_on_bad_assignment() {
        let g = two_cliques();
        // Deliberately interleaved (terrible) assignment.
        let mut a: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        let before = cut_weight(&g, &a);
        let mut rng = StdRng::seed_from_u64(5);
        refine(&g, &mut a, 2, 1.1, 8, &mut rng);
        let after = cut_weight(&g, &a);
        assert!(after < before, "cut {before} -> {after}");
        assert!(after <= 4, "expected near-optimal cut, got {after}");
    }

    #[test]
    fn refinement_respects_balance() {
        let g = two_cliques();
        let mut a: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        let mut rng = StdRng::seed_from_u64(6);
        refine(&g, &mut a, 2, 1.05, 8, &mut rng);
        let ones = a.iter().filter(|&&p| p == 1).count();
        assert!((7..=9).contains(&ones), "imbalanced: {ones} in part 1");
    }

    #[test]
    fn perfect_assignment_is_stable() {
        let g = two_cliques();
        let mut a: Vec<u32> = (0..16).map(|v| if v < 8 { 0 } else { 1 }).collect();
        let mut rng = StdRng::seed_from_u64(7);
        refine(&g, &mut a, 2, 1.05, 4, &mut rng);
        // The single bridge edge has working-graph weight 2 (both directions
        // of the symmetric pair are counted when building the WGraph).
        assert_eq!(cut_weight(&g, &a), 2);
    }

    #[test]
    fn single_part_is_noop() {
        let g = two_cliques();
        let mut a = vec![0u32; 16];
        let mut rng = StdRng::seed_from_u64(8);
        refine(&g, &mut a, 1, 1.05, 4, &mut rng);
        assert!(a.iter().all(|&p| p == 0));
    }
}
